//! The SSD device model: ties flash dies, channels, the DRAM caches, the
//! FTL and the power ledger into a command-level interface.
//!
//! [`Ssd::read`] and [`Ssd::write`] take a submission instant and return a
//! [`DeviceCompletion`] carrying the instant the device would post the
//! completion. All queueing (die conflicts, channel conflicts, buffer
//! backpressure, GC interference) is embedded in that instant via the
//! resource timelines — see DESIGN.md §3.

use std::sync::Arc;

use ull_faults::{FaultPlan, FlashFaults, SsdRecovery, SALT_FLASH_READ, SALT_PROGRAM};
use ull_flash::{FlashDie, FlashSpec};
use ull_probe::DeviceSpan;
use ull_simkit::{SimDuration, SimTime, SplitMix64, Timeline};

use crate::cache::{ReadCache, WriteBuffer};
use crate::config::{SsdConfig, MAP_UNIT_BYTES};
use crate::ftl::Ftl;
use crate::metrics::SsdMetrics;
use crate::power::EnergyLedger;
use crate::topology::{LaneId, Topology};

/// One host command in the slice-based batch interface
/// ([`Ssd::execute_batch`]): what the NVMe controller fetches per
/// doorbell, stripped to the fields the device model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsdCommand {
    /// Read `len` bytes at byte `offset`.
    Read {
        /// Byte offset of the read.
        offset: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Write `len` bytes at byte `offset`.
    Write {
        /// Byte offset of the write.
        offset: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Flush all buffered program rows.
    Flush,
}

/// Outcome of one device command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCompletion {
    /// Instant the device posts the completion.
    pub done: SimTime,
    /// Read served entirely from device DRAM.
    pub dram_hit: bool,
    /// At least one flash read suspended an in-flight program.
    pub suspended: bool,
    /// The command was delayed by foreground garbage collection.
    pub gc_stalled: bool,
}

/// One unit pending in a lane's open program row.
#[derive(Debug, Clone, Copy)]
struct PendingUnit {
    lpn: u64,
    ready: SimTime,
}

/// Timing of one flash-unit read: the unit's finish instant plus the
/// critical die's wait/sense/transfer decomposition (consecutive segments
/// tiling `t0..end`).
#[derive(Debug, Clone, Copy)]
struct FlashUnitRead {
    end: SimTime,
    suspended: bool,
    die_wait: SimDuration,
    cell: SimDuration,
    channel: SimDuration,
}

#[derive(Debug, Default)]
struct RowAccum {
    units: Vec<PendingUnit>,
}

/// Installed fault-injection state: the per-class lottery streams (forked
/// from the plan, so the nominal-path RNGs never see an extra draw) plus
/// the recovery accounting. Absent (`None`) unless a plan with a non-zero
/// flash fault probability is installed — the zero-cost-when-disabled
/// contract.
#[derive(Debug)]
struct SsdFaultState {
    read_rng: SplitMix64,
    program_rng: SplitMix64,
    read_marginal_prob: f64,
    read_max_steps: u32,
    program_fail_prob: f64,
    flash: FlashFaults,
    recovery: SsdRecovery,
}

/// A simulated SSD.
///
/// # Examples
///
/// ```
/// use ull_simkit::SimTime;
/// use ull_ssd::{presets, Ssd};
///
/// let mut ssd = Ssd::new(presets::ull_800g()).expect("valid preset");
/// let c = ssd.read(SimTime::ZERO, 0, 4096);
/// // A ULL read completes in ~10us of device time.
/// assert!(c.done.as_micros_f64() < 20.0);
/// ```
#[derive(Debug)]
pub struct Ssd {
    cfg: SsdConfig,
    spec: Arc<FlashSpec>,
    topo: Topology,
    dies: Vec<FlashDie>,
    channels: Vec<Timeline>,
    pcie: Timeline,
    controller: Timeline,
    ftl: Ftl,
    wbuf: WriteBuffer,
    rcache: ReadCache,
    energy: EnergyLedger,
    metrics: SsdMetrics,
    rng: SplitMix64,
    rows: Vec<RowAccum>,
    row_units: u32,
    last_activity: SimTime,
    faults: Option<SsdFaultState>,
    /// Critical-path decomposition of the most recent command (pure
    /// arithmetic on instants the model already computed; read by the
    /// probe layer via [`Ssd::last_span`]).
    last_span: DeviceSpan,
}

impl Ssd {
    /// Builds a device from a configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`crate::ConfigError`] when the configuration
    /// is inconsistent.
    pub fn new(cfg: SsdConfig) -> Result<Self, crate::config::ConfigError> {
        cfg.validate()?;
        let spec: Arc<FlashSpec> = Arc::new(cfg.flash.clone());
        // Lanes pair up only when the split-DMA engine actually stripes
        // units across the pair; super-channels without split-DMA degrade
        // to independent per-die lanes (the ablation case).
        let topo = Topology::new(cfg.channels, cfg.ways, cfg.splits_across_pair());
        let lanes = topo.lanes();
        let units_per_block = cfg.effective_pages_per_block() * cfg.units_per_row();
        let logical = cfg.logical_units();
        // Physical space = logical * (1 + OP). The GC watermark lives inside
        // the OP margin (as on real devices); a floor keeps degenerate tiny
        // configurations functional.
        let needed = (logical as f64 * (1.0 + cfg.overprovision)).ceil() as u64;
        let blocks_per_lane = (needed.div_ceil(lanes as u64 * units_per_block as u64) as u32)
            .max(cfg.gc.low_watermark + 4);
        let blocks_per_virtual = if cfg.splits_across_pair() { 2 } else { 1 };
        let ftl = Ftl::new(lanes, blocks_per_lane, units_per_block, cfg.gc)
            .with_wear(cfg.wear, blocks_per_virtual);
        let rng = SplitMix64::new(cfg.seed);
        let rcache = ReadCache::new(cfg.read_cache, cfg.seed ^ 0xCACE);
        let row_units = cfg.units_per_row() * cfg.planes;
        Ok(Ssd {
            dies: (0..topo.dies())
                .map(|_| FlashDie::new(Arc::clone(&spec)))
                .collect(),
            channels: (0..cfg.channels).map(|_| Timeline::new()).collect(),
            pcie: Timeline::new(),
            controller: Timeline::new(),
            wbuf: WriteBuffer::new(cfg.write_buffer_units),
            rcache,
            energy: EnergyLedger::new(SimDuration::from_millis(10), cfg.power.idle_w),
            metrics: SsdMetrics::default(),
            rows: (0..lanes).map(|_| RowAccum::default()).collect(),
            row_units,
            last_activity: SimTime::ZERO,
            faults: None,
            last_span: DeviceSpan::empty(SimTime::ZERO),
            rng,
            ftl,
            topo,
            spec,
            cfg,
        })
    }

    /// The device's configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Logical capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes
    }

    /// Cumulative counters.
    pub fn metrics(&self) -> SsdMetrics {
        let mut m = self.metrics;
        m.gc_migrated_units = self.ftl.migrated_units();
        m.forced_gc_events = self.ftl.forced_gc_events();
        m.flash_erases = self.ftl.erased_blocks();
        m.remapped_blocks = self.ftl.remapped_blocks();
        m.physical_blocks_lost = self.ftl.physical_blocks_lost();
        m
    }

    /// The energy ledger (power reporting).
    pub fn energy(&self) -> &EnergyLedger {
        &self.energy
    }

    /// Installs a fault plan. Only the flash-class probabilities matter
    /// here (`flash_read_marginal_prob`, `program_fail_prob`); if both
    /// are zero the device keeps no fault state at all and behaves
    /// bit-for-bit like a device with no plan installed.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.flash_read_marginal_prob > 0.0 || plan.program_fail_prob > 0.0 {
            self.faults = Some(SsdFaultState {
                read_rng: plan.stream(SALT_FLASH_READ),
                program_rng: plan.stream(SALT_PROGRAM),
                read_marginal_prob: plan.flash_read_marginal_prob,
                read_max_steps: plan.flash_read_max_steps.max(1),
                program_fail_prob: plan.program_fail_prob,
                flash: FlashFaults::default(),
                recovery: SsdRecovery::default(),
            });
        } else {
            self.faults = None;
        }
    }

    /// Flash fault and FTL recovery accounting (all zero when no plan
    /// is installed).
    pub fn fault_counters(&self) -> (FlashFaults, SsdRecovery) {
        self.faults
            .as_ref()
            .map_or_else(Default::default, |f| (f.flash, f.recovery))
    }

    /// Instant of the last command completion seen by the device.
    pub fn last_activity(&self) -> SimTime {
        self.last_activity
    }

    /// Critical-path latency decomposition of the most recent
    /// [`Ssd::read`]/[`Ssd::write`]: which device resource each
    /// nanosecond of `done - arrive` was spent on. The segments tile the
    /// interval exactly (`span.is_exact()`), which the probe layer's
    /// `sum(stages) == end_to_end` invariant builds on.
    pub fn last_span(&self) -> DeviceSpan {
        self.last_span
    }

    /// Populates the whole logical space as if sequentially written, without
    /// charging any time — used to precondition GC experiments exactly like
    /// the paper ("writing the entire address range" before measuring).
    pub fn precondition_full(&mut self) {
        for lpn in 0..self.cfg.logical_units() {
            let _ = self.ftl.append(lpn);
        }
        self.metrics = SsdMetrics::default();
    }

    fn channel_time(&self, bytes: u32) -> SimDuration {
        self.cfg.channel_setup
            + SimDuration::from_nanos(bytes as u64 * 1000 / self.cfg.channel_mbps as u64)
    }

    fn pcie_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_nanos(bytes as u64 * 1000 / self.cfg.pcie_mbps as u64)
    }

    fn unit_range(&self, offset: u64, len: u32) -> (u64, u64) {
        assert!(len > 0, "zero-length I/O");
        assert!(
            offset + len as u64 <= self.cfg.capacity_bytes,
            "I/O beyond device capacity: offset={offset} len={len}"
        );
        let first = offset / MAP_UNIT_BYTES as u64;
        let last = (offset + len as u64 - 1) / MAP_UNIT_BYTES as u64;
        (first, last - first + 1)
    }

    /// Serves a host read of `len` bytes at byte `offset`, submitted at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity or `len` is zero.
    pub fn read(&mut self, at: SimTime, offset: u64, len: u32) -> DeviceCompletion {
        let (c, nunits) = self.read_inner(at, offset, len);
        self.metrics.host_reads += 1;
        self.metrics.read_units += nunits;
        c
    }

    /// [`read`](Self::read) minus the per-command host counters, which
    /// [`execute_batch`](Self::execute_batch) accumulates across the
    /// whole slice and flushes once. Returns the unit count so the
    /// caller can do that accumulation.
    fn read_inner(&mut self, at: SimTime, offset: u64, len: u32) -> (DeviceCompletion, u64) {
        let (first, nunits) = self.unit_range(offset, len);
        self.energy.add(at, self.cfg.power.host_read_nj);

        let ctrl = self.controller.reserve(at, self.cfg.controller_per_op);
        // DRAM hits skip the firmware flash path (`controller_read`): the
        // mapping is cached and no flash command is built.
        let t_cmd = ctrl.end;
        let t_flash = t_cmd + self.cfg.controller_read;
        let class = self.rcache.classify(first, nunits);

        let mut ready = t_cmd;
        let mut any_flash = false;
        let mut suspended = false;
        // Timing of the critical (last-finishing) flash unit, for the
        // latency-breakdown span. `None` while the critical unit is a
        // DRAM/buffer hit.
        let mut crit: Option<FlashUnitRead> = None;
        for u in first..first + nunits {
            let unit_ready = if self.wbuf.holds(u, t_cmd) {
                self.metrics.buffer_hits += 1;
                t_cmd + self.rcache.hit_latency()
            } else if class.hit {
                self.metrics.cache_hits += 1;
                t_cmd + self.rcache.hit_latency()
            } else {
                any_flash = true;
                let unit = self.flash_read_unit(t_flash, u);
                suspended |= unit.suspended;
                let end = unit.end;
                if crit.as_ref().is_none_or(|c| end > c.end) {
                    crit = Some(unit);
                }
                end
            };
            ready = ready.max(unit_ready);
        }
        // A hit finishing after every flash unit makes the hit critical.
        if let Some(c) = &crit {
            if ready > c.end {
                crit = None;
            }
        }

        let mut gc_stalled = false;
        if self.rng.chance(self.cfg.read_tail.probability) {
            self.metrics.read_tail_events += 1;
            ready += self.cfg.read_tail.delay;
            gc_stalled = true; // long internal event; reported as a stall
        }

        let done = self.pcie.reserve(ready, self.pcie_time(len)).end;
        self.last_activity = self.last_activity.max(done);
        // Tile arrive..done into consecutive critical-path segments.
        let (firmware, die_wait, cell, channel, crit_end) = match &crit {
            Some(c) => (
                self.cfg.controller_read,
                c.die_wait,
                c.cell,
                c.channel,
                c.end,
            ),
            None => (
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
                SimDuration::ZERO,
                t_cmd,
            ),
        };
        self.last_span = DeviceSpan {
            arrive: at,
            done,
            ctrl_wait: ctrl.start.saturating_since(at),
            ctrl_fetch: ctrl.end.saturating_since(ctrl.start),
            firmware,
            die_wait,
            cell,
            channel,
            // Hit service, slack behind the critical unit and read-tail
            // delay — everything between the critical segment's end and
            // DMA start.
            media_misc: ready.saturating_since(crit_end),
            dma: done.saturating_since(ready),
            write_drain: SimDuration::ZERO,
        };
        (
            DeviceCompletion {
                done,
                dram_hit: !any_flash,
                suspended,
                gc_stalled,
            },
            nunits,
        )
    }

    /// Draws the ECC-marginal lottery for one flash read: `0` on the
    /// nominal path, otherwise the number of read-retry steps the dies
    /// must execute. No draw happens when no plan is installed.
    fn draw_read_retry_steps(&mut self) -> u32 {
        let Some(f) = &mut self.faults else { return 0 };
        if f.read_marginal_prob <= 0.0 || !f.read_rng.chance(f.read_marginal_prob) {
            return 0;
        }
        let steps = 1 + f.read_rng.below(u64::from(f.read_max_steps)) as u32;
        f.flash.read_marginal_events += 1;
        f.flash.read_retry_steps += u64::from(steps);
        steps
    }

    /// Reads one 4 KB unit from flash; returns the unit's end instant
    /// plus the critical die's wait/cell/channel decomposition.
    fn flash_read_unit(&mut self, t0: SimTime, lpn: u64) -> FlashUnitRead {
        let lane = match self.ftl.lookup(lpn) {
            Some(ppa) => ppa.lane,
            None => self.topo.stripe_lane(lpn),
        };
        // ECC-marginal injection: a marginal unit re-senses on every die
        // holding a stripe of it, so each die is busy `steps * tR` longer.
        let retry_steps = self.draw_read_retry_steps();
        let (a, b) = self.topo.lane_dies(lane);
        let read_energy = self.spec.read_energy_nj();
        let mut out = FlashUnitRead {
            end: SimTime::ZERO,
            suspended: false,
            die_wait: SimDuration::ZERO,
            cell: SimDuration::ZERO,
            channel: SimDuration::ZERO,
        };
        let dies: [Option<_>; 2] = [Some(a), b];
        let per_die_bytes = if b.is_some() {
            // Split-DMA: each die supplies half the unit (2 KB pages).
            MAP_UNIT_BYTES / 2
        } else {
            // A 16 KB page is sensed but only the requested 4 KB crosses
            // the channel.
            MAP_UNIT_BYTES
        };
        for die_id in dies.into_iter().flatten() {
            let slot = if self.cfg.suspend_resume {
                self.dies[die_id.0 as usize].read_with_priority(t0)
            } else {
                self.dies[die_id.0 as usize].read(t0)
            };
            out.suspended |= slot.suspended_other;
            if slot.suspended_other {
                self.metrics.program_suspensions += 1;
            }
            self.metrics.flash_reads += 1;
            self.energy.add(slot.start, read_energy);
            let mut sensed = slot.end;
            if retry_steps > 0 {
                let retry = self.dies[die_id.0 as usize].read_retry(slot.end, retry_steps);
                self.energy
                    .add(retry.start, read_energy * f64::from(retry_steps));
                self.metrics.flash_reads += u64::from(retry_steps);
                sensed = retry.end;
            }
            let ch = self.topo.channel_of(die_id) as usize;
            let xfer_time = self.channel_time(per_die_bytes);
            let xfer = self.channels[ch].reserve(sensed, xfer_time);
            if xfer.end > out.end {
                // This die's path is (so far) the unit's critical path:
                // t0 -> die free -> sensed -> on channel, consecutive
                // segments that tile t0..xfer.end exactly.
                out.end = xfer.end;
                out.die_wait = slot.start.saturating_since(t0);
                out.cell = sensed.saturating_since(slot.start);
                out.channel = xfer.end.saturating_since(sensed);
            }
        }
        out
    }

    /// Serves a host write of `len` bytes at byte `offset`, submitted at `at`.
    ///
    /// Completion is posted when all data has been accepted into the DRAM
    /// write buffer (write-back); flash programs drain behind the ack unless
    /// foreground GC forces a stall.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity or `len` is zero.
    pub fn write(&mut self, at: SimTime, offset: u64, len: u32) -> DeviceCompletion {
        let (c, nunits) = self.write_inner(at, offset, len);
        self.metrics.host_writes += 1;
        self.metrics.write_units += nunits;
        c
    }

    /// [`write`](Self::write) minus the per-command host counters (see
    /// [`read_inner`](Self::read_inner)).
    fn write_inner(&mut self, at: SimTime, offset: u64, len: u32) -> (DeviceCompletion, u64) {
        let (first, nunits) = self.unit_range(offset, len);
        self.energy.add(at, self.cfg.power.host_write_nj);

        let ctrl = self.controller.reserve(at, self.cfg.controller_per_op);
        let t0 = ctrl.end + self.cfg.controller_write;
        // The controller DMA-fetches the payload once the command is parsed.
        let data_in = self.pcie.reserve(t0, self.pcie_time(len)).end;

        let mut done = data_in;
        let mut gc_stalled = false;
        for u in first..first + nunits {
            let admit = self.wbuf.admit(data_in, u);
            done = done.max(admit);
            let (placement, gc_work) = self.ftl.append(u);
            let lane = placement.ppa.lane;
            // Charge GC flash work (incremental and forced alike).
            if gc_work.migrated_units > 0 || gc_work.erased_blocks > 0 {
                let gc_end =
                    self.charge_gc(admit, lane, gc_work.migrated_units, gc_work.erased_blocks);
                if placement.forced_migrations > 0 || placement.forced_erase {
                    // Foreground GC: the host write waits for the reclaim.
                    gc_stalled = true;
                    done = done.max(gc_end);
                }
            }
            // Program-fail injection: the unit's program fails at its
            // placement, forcing relocation + retirement (remap-or-mark-bad)
            // and a retry append. Recovery flash work is foreground — the
            // host write observes it, like a forced-GC stall.
            let inject_pf = match &mut self.faults {
                Some(f) if f.program_fail_prob > 0.0 => f.program_rng.chance(f.program_fail_prob),
                _ => false,
            };
            if inject_pf {
                let rec = self.ftl.recover_program_fail(placement.ppa, u);
                if rec.relocated_units > 0 || rec.erased_blocks > 0 {
                    let gc_end =
                        self.charge_gc(admit, lane, rec.relocated_units, rec.erased_blocks);
                    gc_stalled = true;
                    done = done.max(gc_end);
                }
                if let Some(f) = &mut self.faults {
                    f.flash.program_failures += 1;
                    f.recovery.relocated_units += u64::from(rec.relocated_units);
                    if rec.remapped || rec.marked_bad {
                        f.recovery.retired_blocks += 1;
                    }
                    f.recovery.remapped += u64::from(rec.remapped);
                    f.recovery.marked_bad += u64::from(rec.marked_bad);
                    f.recovery.deferred_retirements += u64::from(rec.deferred);
                }
            }
            self.enqueue_drain(
                lane,
                PendingUnit {
                    lpn: u,
                    ready: admit,
                },
            );
        }

        if self.rng.chance(self.cfg.write_tail.probability) {
            self.metrics.write_tail_events += 1;
            done += self.cfg.write_tail.delay;
        }

        self.last_activity = self.last_activity.max(done);
        // Tile arrive..done: fetch, firmware, host->device DMA, then the
        // drain (buffer admission, foreground GC, fail recovery, tail).
        self.last_span = DeviceSpan {
            arrive: at,
            done,
            ctrl_wait: ctrl.start.saturating_since(at),
            ctrl_fetch: ctrl.end.saturating_since(ctrl.start),
            firmware: t0.saturating_since(ctrl.end),
            die_wait: SimDuration::ZERO,
            cell: SimDuration::ZERO,
            channel: SimDuration::ZERO,
            media_misc: SimDuration::ZERO,
            dma: data_in.saturating_since(t0),
            write_drain: done.saturating_since(data_in),
        };
        (
            DeviceCompletion {
                done,
                dram_hit: true,
                suspended: false,
                gc_stalled,
            },
            nunits,
        )
    }

    /// Executes a slice of same-doorbell commands, in order, with one
    /// device borrow and one host-counter metrics flush for the whole
    /// batch — the slice-based pipeline the NVMe controller drains a
    /// doorbell through.
    ///
    /// Per-command ordering is bit-for-bit the [`read`](Self::read)/
    /// [`write`](Self::write)/[`flush`](Self::flush) loop: every
    /// resource reservation, cache mutation, energy charge and RNG draw
    /// happens in the same sequence, and only the order-insensitive
    /// `u64` host counters are accumulated outside the loop (addition
    /// is associative on integers; the energy ledger's `f64` sums stay
    /// inline because theirs is not). One [`DeviceCompletion`] is
    /// pushed to `out` per command; with `spans`, the per-command
    /// critical-path [`DeviceSpan`] is pushed alongside (the flush span
    /// charges the whole wait to the program-drain bucket, as the probe
    /// layer expects).
    pub fn execute_batch(
        &mut self,
        at: SimTime,
        cmds: &[SsdCommand],
        out: &mut Vec<DeviceCompletion>,
        mut spans: Option<&mut Vec<DeviceSpan>>,
    ) {
        let mut host_reads = 0u64;
        let mut host_writes = 0u64;
        let mut read_units = 0u64;
        let mut write_units = 0u64;
        for cmd in cmds {
            let completion = match *cmd {
                SsdCommand::Read { offset, len } => {
                    let (c, n) = self.read_inner(at, offset, len);
                    host_reads += 1;
                    read_units += n;
                    c
                }
                SsdCommand::Write { offset, len } => {
                    let (c, n) = self.write_inner(at, offset, len);
                    host_writes += 1;
                    write_units += n;
                    c
                }
                SsdCommand::Flush => {
                    let done = self.flush(at);
                    // Flush has no per-die critical path; the span
                    // charges the whole wait to the program drain.
                    let mut s = DeviceSpan::empty(at);
                    s.done = done;
                    s.write_drain = done.saturating_since(at);
                    self.last_span = s;
                    DeviceCompletion {
                        done,
                        dram_hit: false,
                        suspended: false,
                        gc_stalled: false,
                    }
                }
            };
            if let Some(s) = spans.as_deref_mut() {
                s.push(self.last_span);
            }
            out.push(completion);
        }
        self.metrics.host_reads += host_reads;
        self.metrics.host_writes += host_writes;
        self.metrics.read_units += read_units;
        self.metrics.write_units += write_units;
    }

    /// Adds a unit to its lane's open program row, flushing full or stale
    /// rows to flash.
    fn enqueue_drain(&mut self, lane: LaneId, unit: PendingUnit) {
        let timeout = self.cfg.row_flush_timeout;
        let row = &mut self.rows[lane.0 as usize];
        // A stale partial row is flushed padded before the new unit joins.
        if let Some(first) = row.units.first() {
            if unit.ready.saturating_since(first.ready) > timeout {
                let stale = std::mem::take(&mut row.units);
                self.flush_row(lane, stale);
            }
        }
        let row = &mut self.rows[lane.0 as usize];
        row.units.push(unit);
        if row.units.len() as u32 >= self.row_units {
            let full = std::mem::take(&mut row.units);
            self.flush_row(lane, full);
        }
    }

    /// Programs one row (possibly padded) on the lane's die(s).
    fn flush_row(&mut self, lane: LaneId, units: Vec<PendingUnit>) {
        if units.is_empty() {
            return;
        }
        let ready = units
            .iter()
            .map(|u| u.ready)
            .fold(SimTime::ZERO, SimTime::max);
        let (a, b) = self.topo.lane_dies(lane);
        let per_die_bytes = self.spec.page_size * self.cfg.planes;
        let program_energy = self.spec.program_energy_nj() * self.cfg.planes as f64;
        let mut program_end = SimTime::ZERO;
        let xfer_time = self.channel_time(per_die_bytes);
        for die_id in [Some(a), b].into_iter().flatten() {
            let ch = self.topo.channel_of(die_id) as usize;
            let xfer = self.channels[ch].reserve(ready, xfer_time);
            let prog = self.dies[die_id.0 as usize].program(xfer.end);
            self.metrics.flash_programs += 1;
            self.energy.add(prog.start, program_energy);
            program_end = program_end.max(prog.end);
        }
        for u in units {
            self.wbuf.retire(u.lpn, program_end);
        }
    }

    /// Charges GC flash work on a lane and returns when it finishes.
    fn charge_gc(&mut self, at: SimTime, lane: LaneId, migrated: u32, erased: u32) -> SimTime {
        let (a, b) = self.topo.lane_dies(lane);
        let rows = migrated.div_ceil(self.cfg.units_per_row());
        // Copyback row: read then program. Parallel (ULL-style) GC pipelines
        // the next read under the current program.
        let row_time = if self.cfg.gc.parallel {
            self.spec.t_prog.max(self.spec.t_read)
        } else {
            self.spec.t_read + self.spec.t_prog
        };
        let unit_energy =
            self.spec.read_energy_nj() + self.spec.program_energy_nj() + self.cfg.power.gc_unit_nj;
        let mut end = at;
        for die_id in [Some(a), b].into_iter().flatten() {
            let die = &mut self.dies[die_id.0 as usize];
            for _ in 0..rows {
                let slot = die.occupy(at, row_time);
                end = end.max(slot.end);
            }
            for _ in 0..erased {
                let slot = die.erase(at);
                end = end.max(slot.end);
                self.energy.add(slot.start, self.spec.erase_energy_nj());
            }
        }
        self.metrics.flash_reads += migrated as u64;
        self.metrics.flash_programs += rows as u64;
        self.energy.add(at, unit_energy * migrated as f64);
        end
    }

    /// Flushes all partially filled program rows (e.g. at the end of a
    /// preconditioning pass), returning when the last program lands.
    pub fn flush(&mut self, at: SimTime) -> SimTime {
        let lanes: Vec<u32> = (0..self.rows.len() as u32).collect();
        let mut end = at;
        for l in lanes {
            let pending = std::mem::take(&mut self.rows[l as usize].units);
            self.flush_row(LaneId(l), pending);
            let (a, b) = self.topo.lane_dies(LaneId(l));
            for die_id in [Some(a), b].into_iter().flatten() {
                end = end.max(self.dies[die_id.0 as usize].busy_until());
            }
        }
        end
    }

    /// Observed DRAM hit rate of the read path.
    pub fn read_hit_rate(&self) -> f64 {
        self.rcache.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn execute_batch_matches_singleton_calls_bitwise() {
        // Differential contract of the slice interface: the same seeded
        // command mix through `execute_batch` and through one-at-a-time
        // `read`/`write`/`flush` calls must agree on every completion,
        // every span, the metrics counters, and the energy ledger.
        let mut rng = SplitMix64::new(0xBA7C);
        let mut cmds = Vec::new();
        for _ in 0..300 {
            let off = (rng.next_u64() % 4096) * 4096;
            let len = 4096 * (1 + (rng.next_u64() % 4) as u32);
            cmds.push(match rng.next_u64() % 8 {
                0..=3 => SsdCommand::Read { offset: off, len },
                4..=6 => SsdCommand::Write { offset: off, len },
                _ => SsdCommand::Flush,
            });
        }
        let mut batched = Ssd::new(presets::ull_800g()).expect("preset");
        let mut stepped = Ssd::new(presets::ull_800g()).expect("preset");
        let mut b_comps = Vec::new();
        let mut b_spans = Vec::new();
        // Varied batch sizes, all at one submission instant per batch,
        // exactly like a doorbell fetch.
        let t = SimTime::from_micros(3);
        for chunk in cmds.chunks(7) {
            batched.execute_batch(t, chunk, &mut b_comps, Some(&mut b_spans));
        }
        let mut s_comps = Vec::new();
        let mut s_spans = Vec::new();
        for cmd in &cmds {
            let c = match *cmd {
                SsdCommand::Read { offset, len } => stepped.read(t, offset, len),
                SsdCommand::Write { offset, len } => stepped.write(t, offset, len),
                SsdCommand::Flush => {
                    let done = stepped.flush(t);
                    let mut s = DeviceSpan::empty(t);
                    s.done = done;
                    s.write_drain = done.saturating_since(t);
                    stepped.last_span = s;
                    DeviceCompletion {
                        done,
                        dram_hit: false,
                        suspended: false,
                        gc_stalled: false,
                    }
                }
            };
            s_comps.push(c);
            s_spans.push(stepped.last_span());
        }
        assert_eq!(b_comps, s_comps);
        assert_eq!(b_spans, s_spans);
        assert_eq!(batched.metrics(), stepped.metrics());
        let horizon = SimTime::from_micros(50_000);
        assert_eq!(
            batched.energy().average_power(horizon).to_bits(),
            stepped.energy().average_power(horizon).to_bits(),
            "energy ledger must be bit-identical"
        );
    }

    #[test]
    fn zero_rate_plan_is_bitwise_nominal() {
        let run = |plan: Option<FaultPlan>| -> Vec<SimTime> {
            let mut ssd = Ssd::new(presets::ull_800g()).expect("preset");
            if let Some(p) = plan {
                ssd.set_fault_plan(&p);
            }
            let mut out = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..200u64 {
                let off = (i % 64) * 4096;
                let c = if i % 3 == 0 {
                    ssd.write(t, off, 4096)
                } else {
                    ssd.read(t, off, 4096)
                };
                out.push(c.done);
                t = c.done;
            }
            out
        };
        assert_eq!(run(None), run(Some(FaultPlan::none())));
        assert_eq!(run(None), run(Some(FaultPlan::uniform(9, 0.0))));
    }

    #[test]
    fn injected_faults_are_counted_and_slow_the_device() {
        let mut nominal = Ssd::new(presets::ull_800g()).expect("preset");
        let mut faulty = Ssd::new(presets::ull_800g()).expect("preset");
        faulty.set_fault_plan(&FaultPlan::uniform(7, 0.2));
        let mut t_n = SimTime::ZERO;
        let mut t_f = SimTime::ZERO;
        for i in 0..400u64 {
            let off = (i % 64) * 4096;
            if i % 2 == 0 {
                t_n = nominal.write(t_n, off, 4096).done;
                t_f = faulty.write(t_f, off, 4096).done;
            } else {
                t_n = nominal.read(t_n, off, 4096).done;
                t_f = faulty.read(t_f, off, 4096).done;
            }
        }
        let (flash, rec) = faulty.fault_counters();
        assert!(flash.read_marginal_events > 0, "no marginal reads injected");
        assert!(flash.read_retry_steps >= flash.read_marginal_events);
        assert!(flash.program_failures > 0, "no program failures injected");
        // Exactly one outcome per program failure.
        assert_eq!(
            rec.retired_blocks + rec.deferred_retirements,
            flash.program_failures
        );
        assert_eq!(rec.remapped + rec.marked_bad, rec.retired_blocks);
        assert_eq!(nominal.fault_counters(), Default::default());
        assert!(
            t_f > t_n,
            "fault recovery must cost simulated time ({t_f:?} vs {t_n:?})"
        );
    }

    #[test]
    fn device_spans_tile_every_command_exactly() {
        // The per-command DeviceSpan must tile arrive..done with no gap or
        // overlap, for both presets, under queueing, GC pressure, and fault
        // recovery alike — ull-probe's end-to-end accounting builds on this.
        for plan in [None, Some(FaultPlan::uniform(7, 0.15))] {
            for cfg in [presets::ull_800g(), presets::nvme750()] {
                let mut ssd = Ssd::new(cfg).expect("preset");
                if let Some(p) = &plan {
                    ssd.set_fault_plan(p);
                }
                let mut t = SimTime::ZERO;
                for i in 0..600u64 {
                    let off = ((i * 37) % 512) * 4096;
                    let c = if i % 3 == 0 {
                        ssd.write(t, off, 4096)
                    } else {
                        ssd.read(t, off, 16 * 4096)
                    };
                    let span = ssd.last_span();
                    assert_eq!(span.arrive, t, "span must start at submission");
                    assert_eq!(span.done, c.done, "span must end at completion");
                    assert!(
                        span.is_exact(),
                        "req {i}: stages sum {:?} != e2e {:?}",
                        span.accounted(),
                        c.done.saturating_since(t)
                    );
                    // Tight closed loop to force queueing.
                    t = t + (c.done.saturating_since(t)) / 4;
                }
            }
        }
    }

    #[test]
    fn fault_runs_are_reproducible() {
        let run = || {
            let mut ssd = Ssd::new(presets::ull_800g()).expect("preset");
            ssd.set_fault_plan(&FaultPlan::uniform(11, 0.1));
            let mut t = SimTime::ZERO;
            for i in 0..300u64 {
                let off = (i % 32) * 4096;
                t = if i % 2 == 0 {
                    ssd.write(t, off, 4096).done
                } else {
                    ssd.read(t, off, 4096).done
                };
            }
            (t, ssd.fault_counters())
        };
        assert_eq!(run(), run());
    }
}
