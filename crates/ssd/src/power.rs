//! Energy accounting and power reporting (figs. 7a, 8a, 8b).
//!
//! The device is modelled as a constant idle platform power plus discrete
//! per-operation energies (flash array ops from `ull-flash`, controller/
//! DRAM/PCIe work from [`crate::PowerParams`]). Binning the energy over
//! time yields the paper's power-vs-time plots; dividing total energy by
//! elapsed time yields fig. 7a's average power bars.

use ull_simkit::{SimDuration, SimTime};

/// Accumulates per-operation energy into fixed-width time bins.
///
/// # Examples
///
/// ```
/// use ull_simkit::{SimDuration, SimTime};
/// use ull_ssd::EnergyLedger;
///
/// let mut e = EnergyLedger::new(SimDuration::from_millis(1), 3.8);
/// e.add(SimTime::from_micros(100), 1_000_000.0); // 1 mJ in bin 0
/// let p = e.power_series(SimTime::from_nanos(2_000_000));
/// assert!((p[0].1 - (3.8 + 1.0)).abs() < 1e-9); // idle + 1mJ/1ms = 1W
/// assert!((p[1].1 - 3.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    bin_width: SimDuration,
    idle_w: f64,
    bins_nj: Vec<f64>,
    total_nj: f64,
}

impl EnergyLedger {
    /// Creates a ledger with the given bin width and idle platform power.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration, idle_w: f64) -> Self {
        assert!(!bin_width.is_zero(), "energy bin width must be non-zero");
        EnergyLedger {
            bin_width,
            idle_w,
            bins_nj: Vec::new(),
            total_nj: 0.0,
        }
    }

    /// Charges `nanojoules` of work at instant `at`.
    pub fn add(&mut self, at: SimTime, nanojoules: f64) {
        debug_assert!(nanojoules >= 0.0, "energy must be non-negative");
        let idx = (at.as_nanos() / self.bin_width.as_nanos()) as usize;
        if idx >= self.bins_nj.len() {
            self.bins_nj.resize(idx + 1, 0.0);
        }
        // simlint: allow(S007): energy is charged strictly in event order by the single-threaded device loop, so this f64 sum is order-deterministic; nanojoule magnitudes span ~9 decades, which integer picojoules would overflow per run
        self.bins_nj[idx] += nanojoules;
        // simlint: allow(S007): same fixed event order as the bin charge above
        self.total_nj += nanojoules;
    }

    /// Idle platform power, watts.
    pub fn idle_w(&self) -> f64 {
        self.idle_w
    }

    /// Total dynamic energy charged so far, millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj / 1e6
    }

    /// Average power over `[0, until]`, watts (idle + dynamic).
    pub fn average_power(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return self.idle_w;
        }
        self.idle_w + self.total_nj / until.as_nanos_f64()
    }

    /// Per-bin `(bin start, watts)` series up to `until`.
    pub fn power_series(&self, until: SimTime) -> Vec<(SimTime, f64)> {
        let nbins = (until.as_nanos()).div_ceil(self.bin_width.as_nanos()) as usize;
        (0..nbins)
            .map(|i| {
                let start = SimTime::from_nanos(i as u64 * self.bin_width.as_nanos());
                let nj = self.bins_nj.get(i).copied().unwrap_or(0.0);
                (start, self.idle_w + nj / self.bin_width.as_nanos_f64())
            })
            .collect()
    }
}

/// Converts nanojoules spread over a duration into watts.
pub fn nj_over(nj: f64, d: SimDuration) -> f64 {
    if d.is_zero() {
        0.0
    } else {
        nj / d.as_nanos_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_power_is_idle_plus_dynamic() {
        let mut e = EnergyLedger::new(SimDuration::from_millis(1), 4.0);
        // 2 joules over 1 second => +2 W.
        e.add(SimTime::from_micros(1), 2e9);
        let avg = e.average_power(SimTime::ZERO + SimDuration::from_secs(1));
        assert!((avg - 6.0).abs() < 1e-9);
        assert!((e.total_mj() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn series_covers_requested_window() {
        let mut e = EnergyLedger::new(SimDuration::from_millis(10), 1.0);
        e.add(SimTime::from_micros(25_000), 5.0e6); // bin 2
        let s = e.power_series(SimTime::ZERO + SimDuration::from_millis(50));
        assert_eq!(s.len(), 5);
        assert!((s[2].1 - 1.5).abs() < 1e-9); // 5mJ over 10ms = 0.5W
        assert!((s[4].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact constants by construction
    fn nj_over_handles_zero() {
        assert_eq!(nj_over(100.0, SimDuration::ZERO), 0.0);
        assert!((nj_over(1000.0, SimDuration::from_micros(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact constants by construction
    fn empty_ledger_reports_idle() {
        let e = EnergyLedger::new(SimDuration::from_millis(1), 3.8);
        assert_eq!(e.average_power(SimTime::ZERO), 3.8);
        assert_eq!(e.average_power(SimTime::from_micros(10)), 3.8);
    }
}
