//! The two devices of the paper's testbed.
//!
//! All constants are *calibrated*, not guessed: each value is chosen so the
//! device-level latencies reported in §IV (and the derived stack-level
//! numbers in §V/§VI) land near the paper's measurements. EXPERIMENTS.md
//! records the resulting paper-vs-measured comparison per figure.
//!
//! Capacities are scaled down (2 GiB logical) so FTL mapping tables stay
//! small; channel/die counts, timing and over-provisioning *ratios* match
//! the real devices, which is what the behaviours depend on.

use ull_flash::FlashSpec;
use ull_simkit::SimDuration;

use crate::config::{GcPolicy, PowerParams, ReadCachePolicy, SsdConfig, TailEvent};
use crate::ftl::WearConfig;

/// Default scaled logical capacity for both presets.
pub const SCALED_CAPACITY: u64 = 2 << 30;

/// The 800 GB Z-SSD prototype (ULL SSD).
///
/// 16 channels x 8 ways of Z-NAND, paired into 8 super-channels with
/// split-DMA and program suspend/resume; generous (28%) over-provisioning
/// and parallel GC.
///
/// Calibration targets (paper §IV-A, §V-A): ~9.5 µs device-level sequential
/// read, ~12 µs random read, ~8 µs buffered write, bandwidth saturation by
/// queue depth 8–16.
pub fn ull_800g() -> SsdConfig {
    SsdConfig {
        name: "ULL SSD (Z-SSD 800GB)",
        flash: FlashSpec::z_nand(),
        channels: 16,
        ways: 8,
        super_channel: true,
        split_dma: true,
        suspend_resume: true,
        planes: 1,
        channel_mbps: 800,
        channel_setup: SimDuration::from_nanos(200),
        pcie_mbps: 3200,
        controller_read: SimDuration::from_nanos(3_650),
        controller_write: SimDuration::from_nanos(5_150),
        controller_per_op: SimDuration::from_nanos(1_450),
        capacity_bytes: SCALED_CAPACITY,
        pages_per_block_override: Some(96),
        overprovision: 0.28,
        write_buffer_units: 4096,
        row_flush_timeout: SimDuration::from_millis(5),
        read_cache: ReadCachePolicy {
            seq_hit_prob: 0.40,
            rnd_hit_prob: 0.02,
            hit_latency: SimDuration::from_micros(1),
        },
        gc: GcPolicy {
            low_watermark: 3,
            units_per_host_write: 2,
            parallel: true,
        },
        wear: WearConfig {
            per_erase_prob: 1e-4,
            remap_enabled: true,
            spares_per_lane: 2,
            seed: 0xBAD0,
        },
        // Rare internal events (read retry / wear levelling): the source of
        // the "hundreds of microseconds" five-nines tail of fig. 4b.
        read_tail: TailEvent {
            probability: 2e-5,
            delay: SimDuration::from_micros(400),
        },
        write_tail: TailEvent {
            probability: 5e-5,
            delay: SimDuration::from_micros(450),
        },
        power: PowerParams {
            idle_w: 3.8,
            host_read_nj: 800.0,
            host_write_nj: 2_500.0,
            gc_unit_nj: 2_000.0,
        },
        seed: 0x2550,
    }
}

/// The Intel SSD 750 (400 GB class) NVMe device.
///
/// 8 channels x 4 ways of planar MLC with two-plane programming, a large
/// DRAM cache with strong sequential readahead, slim (7%) over-provisioning
/// and conventional serialized GC.
///
/// Calibration targets: ~14 µs buffered write, ~80 µs random read, 4 KB
/// write bandwidth ceiling near 40% of the read maximum, millisecond-class
/// five-nines tails.
pub fn nvme750() -> SsdConfig {
    SsdConfig {
        name: "NVMe SSD (Intel 750 400GB)",
        flash: FlashSpec::planar_mlc(),
        channels: 8,
        ways: 4,
        super_channel: false,
        split_dma: false,
        suspend_resume: false,
        planes: 2,
        channel_mbps: 250,
        channel_setup: SimDuration::from_nanos(300),
        pcie_mbps: 3200,
        controller_read: SimDuration::from_micros(9),
        controller_write: SimDuration::from_micros(7),
        controller_per_op: SimDuration::from_nanos(2_200),
        capacity_bytes: SCALED_CAPACITY,
        pages_per_block_override: Some(32),
        overprovision: 0.07,
        write_buffer_units: 2048,
        row_flush_timeout: SimDuration::from_millis(5),
        read_cache: ReadCachePolicy {
            seq_hit_prob: 0.85,
            rnd_hit_prob: 0.02,
            hit_latency: SimDuration::from_micros(2),
        },
        gc: GcPolicy {
            low_watermark: 3,
            units_per_host_write: 2,
            parallel: false,
        },
        wear: WearConfig {
            per_erase_prob: 1e-4,
            remap_enabled: true,
            spares_per_lane: 2,
            seed: 0xBAD7,
        },
        read_tail: TailEvent {
            probability: 5e-5,
            delay: SimDuration::from_micros(1_400),
        },
        write_tail: TailEvent {
            probability: 1e-4,
            delay: SimDuration::from_micros(3_000),
        },
        power: PowerParams {
            idle_w: 3.8,
            host_read_nj: 1_500.0,
            host_write_nj: 20_000.0,
            gc_unit_nj: 1_000.0,
        },
        seed: 0x750,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_capacity_keeps_tables_small() {
        // 2 GiB / 4 KiB = 512K mapping entries per device.
        assert_eq!(ull_800g().logical_units(), 524_288);
        assert_eq!(nvme750().logical_units(), 524_288);
    }

    #[test]
    fn geometry_reflects_design_points() {
        let ull = ull_800g();
        assert_eq!(ull.dies(), 128);
        assert!(ull.super_channel && ull.split_dma && ull.suspend_resume);
        let nvme = nvme750();
        assert_eq!(nvme.dies(), 32);
        assert!(!nvme.super_channel && !nvme.suspend_resume);
    }

    #[test]
    fn over_provisioning_ratios_differ() {
        assert!(ull_800g().overprovision > 3.0 * nvme750().overprovision);
    }
}
