//! The device's internal DRAM: write-back buffer and read cache.
//!
//! The write buffer is what lets both devices acknowledge 4 KB writes in
//! ~10 µs even though a flash program takes 100 µs (Z-NAND) or 1.3 ms
//! (MLC): data is acked when it lands in DRAM and drains to flash behind
//! the ack. Its *finite size* is equally important — once the drain rate is
//! the bottleneck, admission blocks and the host observes flash/GC speed,
//! which is exactly the fig. 5 write-bandwidth ceiling and the fig. 7b GC
//! latency cliff.

use std::collections::BTreeMap;

use ull_simkit::{SimDuration, SimTime, SplitMix64, TimingWheel};

use crate::config::ReadCachePolicy;

/// Bounded write-back buffer: a unit occupies one slot from admission until
/// its flash program retires.
///
/// # Examples
///
/// ```
/// use ull_simkit::SimTime;
/// use ull_ssd::WriteBuffer;
///
/// let mut buf = WriteBuffer::new(1);
/// let t0 = buf.admit(SimTime::ZERO, 0);
/// assert_eq!(t0, SimTime::ZERO);
/// buf.retire(0, SimTime::from_micros(100)); // slot busy until the program ends
/// // Second unit must wait for the slot.
/// assert_eq!(buf.admit(SimTime::ZERO, 1), SimTime::from_micros(100));
/// ```
#[derive(Debug)]
pub struct WriteBuffer {
    capacity: usize,
    /// Pending slot releases ordered by program-end instant. Entries at
    /// equal instants are interchangeable (the payload *is* the time),
    /// so swapping the historical `BinaryHeap<Reverse<u64>>` for the
    /// timing wheel cannot change any admit decision.
    releases: TimingWheel<()>,
    /// lpn -> time at which the buffered copy stops being addressable
    /// (program end); reads before that are DRAM hits. A `BTreeMap` so the
    /// periodic `sweep` retains entries in a deterministic order (S003).
    resident: BTreeMap<u64, u64>,
    admitted: u64,
}

impl WriteBuffer {
    /// Creates a buffer of `capacity` 4 KB slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "write buffer needs at least one slot");
        WriteBuffer {
            capacity: capacity as usize,
            releases: TimingWheel::new(),
            resident: BTreeMap::new(),
            admitted: 0,
        }
    }

    /// Admits one unit arriving at `at`, returning the instant it actually
    /// enters DRAM (possibly delayed by a full buffer).
    pub fn admit(&mut self, at: SimTime, lpn: u64) -> SimTime {
        self.admitted += 1;
        // A full buffer (`len >= capacity >= 1`) always has a pending
        // release, so the else-branch of the inner `if let` is unreachable;
        // admitting immediately there is a safe, panic-free fallback.
        let admitted_at = if self.releases.len() < self.capacity {
            at
        } else if let Some((earliest, ())) = self.releases.pop() {
            at.max(earliest)
        } else {
            at
        };
        self.resident.insert(lpn, u64::MAX); // provisional until retire()
        if self.admitted.is_multiple_of(4096) {
            self.sweep(admitted_at);
        }
        admitted_at
    }

    /// Records that the unit's flash program completes at `program_end`,
    /// freeing the slot then.
    pub fn retire(&mut self, lpn: u64, program_end: SimTime) {
        self.releases.schedule(program_end, ());
        self.resident.insert(lpn, program_end.as_nanos());
    }

    /// Whether a read of `lpn` issued at `at` can be served from the
    /// buffered copy.
    pub fn holds(&self, lpn: u64, at: SimTime) -> bool {
        self.resident
            .get(&lpn)
            .is_some_and(|&until| at.as_nanos() < until)
    }

    /// Total units ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Slots currently accounted busy (upper bound; lazily trimmed).
    pub fn in_flight(&self) -> usize {
        self.releases.len()
    }

    fn sweep(&mut self, now: SimTime) {
        let now = now.as_nanos();
        self.resident
            .retain(|_, &mut until| until == u64::MAX || until > now);
    }
}

/// How the read cache classified one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadClass {
    /// The request continued the previous one's address range.
    pub sequential: bool,
    /// The request hits device DRAM (readahead or cached data).
    pub hit: bool,
}

/// Locality-sensitive read cache / readahead model.
///
/// The real devices prefetch ahead of detected sequential streams and keep
/// recently accessed data in DRAM; rather than simulating DRAM contents we
/// classify each read and draw a hit with the configured per-class
/// probability — deterministic under a fixed seed.
#[derive(Debug)]
pub struct ReadCache {
    policy: ReadCachePolicy,
    expected_next: Option<u64>,
    rng: SplitMix64,
    hits: u64,
    lookups: u64,
}

impl ReadCache {
    /// Creates a cache with the given policy and RNG seed.
    pub fn new(policy: ReadCachePolicy, seed: u64) -> Self {
        ReadCache {
            policy,
            expected_next: None,
            rng: SplitMix64::new(seed),
            hits: 0,
            lookups: 0,
        }
    }

    /// Classifies a read of `units` 4 KB units starting at `lpn`.
    pub fn classify(&mut self, lpn: u64, units: u64) -> ReadClass {
        self.lookups += 1;
        let sequential = self.expected_next == Some(lpn);
        self.expected_next = Some(lpn + units);
        let p = if sequential {
            self.policy.seq_hit_prob
        } else {
            self.policy.rnd_hit_prob
        };
        let hit = self.rng.chance(p);
        if hit {
            self.hits += 1;
        }
        ReadClass { sequential, hit }
    }

    /// DRAM service latency on a hit.
    pub fn hit_latency(&self) -> SimDuration {
        self.policy.hit_latency
    }

    /// Observed hit fraction so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_simkit::SimDuration;

    fn policy(seq: f64, rnd: f64) -> ReadCachePolicy {
        ReadCachePolicy {
            seq_hit_prob: seq,
            rnd_hit_prob: rnd,
            hit_latency: SimDuration::from_micros(2),
        }
    }

    #[test]
    fn buffer_admits_immediately_when_free() {
        let mut b = WriteBuffer::new(4);
        for lpn in 0..4 {
            assert_eq!(
                b.admit(SimTime::from_micros(1), lpn),
                SimTime::from_micros(1)
            );
        }
        assert_eq!(b.admitted(), 4);
    }

    #[test]
    fn full_buffer_blocks_until_earliest_release() {
        let mut b = WriteBuffer::new(2);
        b.admit(SimTime::ZERO, 0);
        b.retire(0, SimTime::from_micros(300));
        b.admit(SimTime::ZERO, 1);
        b.retire(1, SimTime::from_micros(100));
        // Both slots busy; earliest frees at 100us.
        assert_eq!(
            b.admit(SimTime::from_micros(5), 2),
            SimTime::from_micros(100)
        );
        b.retire(2, SimTime::from_micros(400));
        // Next earliest is 300us.
        assert_eq!(
            b.admit(SimTime::from_micros(5), 3),
            SimTime::from_micros(300)
        );
    }

    #[test]
    fn buffered_data_is_readable_until_program_end() {
        let mut b = WriteBuffer::new(4);
        b.admit(SimTime::ZERO, 42);
        // Not yet retired: provisionally resident forever.
        assert!(b.holds(42, SimTime::from_micros(1)));
        b.retire(42, SimTime::from_micros(100));
        assert!(b.holds(42, SimTime::from_micros(99)));
        assert!(!b.holds(42, SimTime::from_micros(100)));
        assert!(!b.holds(7, SimTime::ZERO));
    }

    #[test]
    fn sequential_detection_tracks_stream() {
        let mut c = ReadCache::new(policy(1.0, 0.0), 1);
        assert!(!c.classify(10, 2).sequential); // first access
        let second = c.classify(12, 2);
        assert!(second.sequential);
        assert!(second.hit); // seq prob 1.0
        let jump = c.classify(100, 1);
        assert!(!jump.sequential);
        assert!(!jump.hit); // rnd prob 0.0
    }

    #[test]
    fn hit_probability_is_respected() {
        let mut c = ReadCache::new(policy(0.0, 0.5), 7);
        let hits = (0..10_000).filter(|i| c.classify(i * 97, 1).hit).count();
        assert!((hits as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }
}
