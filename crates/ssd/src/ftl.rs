//! Page-mapped flash translation layer with greedy, incremental garbage
//! collection.
//!
//! The FTL maps 4 KB logical units onto `(lane, block, slot)` physical
//! addresses. Each lane (die, or super-channel die pair) owns its blocks,
//! an append-point ("open block") and a free list. Overwrites invalidate
//! the old slot; when a lane's free list reaches the low watermark, GC
//! starts migrating the victim with the most invalid slots. Migration is
//! *incremental* — a few units per host write — which is how real firmware
//! amortizes reclamation; the remainder is forced synchronously only when a
//! lane is about to run out of space (the fig. 7b latency spikes).

use ull_flash::BlockState;
use ull_simkit::SplitMix64;

use crate::config::GcPolicy;
use crate::remap::RemapChecker;
use crate::topology::LaneId;

/// Flash wear-out policy: how often erases kill blocks, and whether the
/// split-DMA remap checker (§II-A2) substitutes spares for them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearConfig {
    /// Probability that a block wears out on any given erase.
    pub per_erase_prob: f64,
    /// Whether the remap checker substitutes a same-channel spare,
    /// preserving the semi-virtual block space (and, for super-channel
    /// pairs, the healthy partner block).
    pub remap_enabled: bool,
    /// Spare blocks per lane available for remapping.
    pub spares_per_lane: u32,
    /// RNG seed for wear draws.
    pub seed: u64,
}

impl WearConfig {
    /// No wear-out (the default for short experiments).
    pub const NONE: WearConfig = WearConfig {
        per_erase_prob: 0.0,
        remap_enabled: false,
        spares_per_lane: 0,
        seed: 0,
    };
}

/// A physical address: lane, block within lane, 4 KB slot within block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ppa {
    /// Allocation lane.
    pub lane: LaneId,
    /// Block index within the lane.
    pub block: u32,
    /// 4 KB slot index within the block.
    pub slot: u32,
}

/// What [`Ftl::append`] had to do to place a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Where the unit landed.
    pub ppa: Ppa,
    /// Units that must be migrated *right now* (forced foreground GC)
    /// before this append could proceed. Zero in steady state.
    pub forced_migrations: u32,
    /// Whether a block erase was consumed by forced GC.
    pub forced_erase: bool,
}

/// GC work the device should charge to flash timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcWork {
    /// Valid units copied (each is a flash read + its share of a program).
    pub migrated_units: u32,
    /// Blocks erased.
    pub erased_blocks: u32,
}

/// Outcome of [`Ftl::recover_program_fail`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramFailRecovery {
    /// Where the unit landed after the retry program.
    pub new_ppa: Ppa,
    /// Valid units relocated during recovery (survivors moved off the
    /// failing block, plus any GC migration the retry append forced).
    pub relocated_units: u32,
    /// Blocks erased during recovery (the retirement erase plus any
    /// forced-GC erase from the retry append).
    pub erased_blocks: u32,
    /// The failing block was retired into an overprovisioned spare.
    pub remapped: bool,
    /// The failing block was retired without a spare (capacity lost).
    pub marked_bad: bool,
    /// Retirement was deferred: the block was busy (mid-drain GC
    /// victim, GC destination, or un-rotatable append point) or no
    /// safe destination existed for its survivors. The damage stays
    /// recorded on the block; only the retry append happened.
    pub deferred: bool,
}

#[derive(Debug)]
struct Lane {
    blocks: Vec<BlockState>,
    /// Reverse map: for each block, the lpn stored in each slot.
    p2l: Vec<Vec<u64>>,
    free: Vec<u32>,
    /// Append point for host writes.
    open: u32,
    /// Append point for GC relocations (kept separate so a mid-drain victim
    /// never competes with host data for its destination).
    gc_open: u32,
    victim: Option<Victim>,
}

#[derive(Debug)]
struct Victim {
    block: u32,
    /// Slots not yet examined for migration.
    cursor: u32,
}

impl Lane {
    fn new(blocks: u32, units_per_block: u32) -> Self {
        assert!(
            blocks >= 4,
            "a lane needs >= 4 blocks (open + gc-open + free + victim)"
        );
        // Block 0 is the host open block, block 1 the GC destination block,
        // the rest start free.
        let free: Vec<u32> = (2..blocks).rev().collect();
        Lane {
            blocks: (0..blocks)
                .map(|_| BlockState::new(units_per_block))
                .collect(),
            p2l: (0..blocks)
                .map(|_| vec![u64::MAX; units_per_block as usize])
                .collect(),
            free,
            open: 0,
            gc_open: 1,
            victim: None,
        }
    }

    fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Picks the fullest-of-invalid victim among closed blocks — but only
    /// when the guaranteed GC destination space (remaining slots in the GC
    /// open block, plus one whole free block if any) can absorb every valid
    /// unit of the victim. This capacity guard is what makes incremental
    /// migration deadlock-free: once a drain starts, it always completes
    /// without needing blocks that might not exist.
    fn pick_victim(&mut self, units_per_block: u32) -> Option<u32> {
        if let Some(v) = &self.victim {
            return Some(v.block);
        }
        let mut best: Option<(u32, u32)> = None; // (block, invalid)
        for (i, b) in self.blocks.iter().enumerate() {
            let i = i as u32;
            // The append points are protected while they still accept data;
            // once full they are ordinary victims (hot data concentrates
            // invalidations in the host open block, so excluding it forever
            // would strand reclaimable space).
            let active_append_point = (i == self.open || i == self.gc_open) && b.free_pages() > 0;
            if active_append_point || self.free.contains(&i) || b.is_bad() {
                continue;
            }
            let inv = b.invalid_count();
            if inv == 0 {
                continue;
            }
            if best.is_none_or(|(_, bi)| inv > bi) {
                best = Some((i, inv));
            }
        }
        let (block, _) = best?;
        let destination_capacity = self.blocks[self.gc_open as usize].free_pages()
            + if self.free.is_empty() {
                0
            } else {
                units_per_block
            };
        if self.blocks[block as usize].valid_count() > destination_capacity {
            return None;
        }
        self.victim = Some(Victim { block, cursor: 0 });
        Some(block)
    }
}

/// The translation layer.
///
/// # Examples
///
/// ```
/// use ull_ssd::{Ftl, GcPolicy};
///
/// let gc = GcPolicy { low_watermark: 3, units_per_host_write: 4, parallel: false };
/// // 2 lanes x 8 blocks x 16 units, no spare blocks beyond geometry.
/// let mut ftl = Ftl::new(2, 8, 16, gc);
/// let (placement, _gc) = ftl.append(0);
/// assert_eq!(ftl.lookup(0), Some(placement.ppa));
/// ```
#[derive(Debug)]
pub struct Ftl {
    l2p: Vec<Option<Ppa>>,
    lanes: Vec<Lane>,
    units_per_block: u32,
    next_lane: u32,
    gc: GcPolicy,
    total_migrated: u64,
    total_erased: u64,
    forced_gc_events: u64,
    wear: WearConfig,
    wear_rng: SplitMix64,
    remap: Vec<RemapChecker>,
    /// Physical blocks each semi-virtual block spans (2 for split pairs).
    blocks_per_virtual: u32,
    remapped_blocks: u64,
    physical_blocks_lost: u64,
}

impl Ftl {
    /// Creates an FTL with `lanes` lanes of `blocks_per_lane` blocks, each
    /// holding `units_per_block` 4 KB units. The logical space callers may
    /// address must be smaller than the physical space by the
    /// over-provisioning margin; [`crate::Ssd::new`] guarantees this.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `blocks_per_lane < 4`.
    pub fn new(lanes: u32, blocks_per_lane: u32, units_per_block: u32, gc: GcPolicy) -> Self {
        assert!(
            lanes > 0 && units_per_block > 0,
            "FTL dimensions must be non-zero"
        );
        let physical_units = lanes as u64 * blocks_per_lane as u64 * units_per_block as u64;
        Ftl {
            l2p: vec![None; physical_units as usize], // sized generously; device narrows use
            lanes: (0..lanes)
                .map(|_| Lane::new(blocks_per_lane, units_per_block))
                .collect(),
            units_per_block,
            next_lane: 0,
            gc,
            total_migrated: 0,
            total_erased: 0,
            forced_gc_events: 0,
            wear: WearConfig::NONE,
            wear_rng: SplitMix64::new(0),
            remap: (0..lanes)
                .map(|_| RemapChecker::new(blocks_per_lane, 0))
                .collect(),
            blocks_per_virtual: 1,
            remapped_blocks: 0,
            physical_blocks_lost: 0,
        }
    }

    /// Enables wear-out with the given policy; `blocks_per_virtual` is the
    /// number of physical blocks one FTL block spans (2 for super-channel
    /// pairs — the capacity a bad block strands when remapping is off).
    pub fn with_wear(mut self, wear: WearConfig, blocks_per_virtual: u32) -> Self {
        let blocks = self.lanes[0].blocks.len() as u32;
        self.remap = (0..self.lanes.len())
            .map(|_| RemapChecker::new(blocks, wear.spares_per_lane))
            .collect();
        self.wear_rng = SplitMix64::new(wear.seed ^ 0xBAD_B10C);
        self.wear = wear;
        self.blocks_per_virtual = blocks_per_virtual.max(1);
        self
    }

    /// Blocks whose failures the remap checker absorbed.
    pub fn remapped_blocks(&self) -> u64 {
        self.remapped_blocks
    }

    /// Physical blocks stranded by unremapped failures.
    pub fn physical_blocks_lost(&self) -> u64 {
        self.physical_blocks_lost
    }

    /// Physical capacity in 4 KB units.
    pub fn physical_units(&self) -> u64 {
        self.lanes.len() as u64 * self.lanes[0].blocks.len() as u64 * self.units_per_block as u64
    }

    /// Looks up the physical address of a logical unit.
    pub fn lookup(&self, lpn: u64) -> Option<Ppa> {
        self.l2p.get(lpn as usize).copied().flatten()
    }

    /// Total units migrated by GC so far.
    pub fn migrated_units(&self) -> u64 {
        self.total_migrated
    }

    /// Total blocks erased by GC so far.
    pub fn erased_blocks(&self) -> u64 {
        self.total_erased
    }

    /// Times an append had to run foreground GC.
    pub fn forced_gc_events(&self) -> u64 {
        self.forced_gc_events
    }

    /// Whether a lane is under GC pressure.
    pub fn lane_needs_gc(&self, lane: LaneId) -> bool {
        self.lanes[lane.0 as usize].free_blocks() <= self.gc.low_watermark
    }

    /// Free blocks on a lane (observability/tests).
    pub fn lane_free_blocks(&self, lane: LaneId) -> u32 {
        self.lanes[lane.0 as usize].free_blocks()
    }

    /// The round-robin lane the next host write will target.
    pub fn next_write_lane(&self) -> LaneId {
        LaneId(self.next_lane)
    }

    /// Writes (or overwrites) `lpn`, returning the placement plus any GC
    /// work performed alongside it (incremental background migration and/or
    /// forced foreground migration).
    ///
    /// Lanes are filled round-robin (channel striping); a lane that is
    /// momentarily wedged — no space and nothing reclaimable right now — is
    /// skipped, as firmware allocators do.
    pub fn append(&mut self, lpn: u64) -> (Placement, GcWork) {
        let n = self.lanes.len() as u32;
        let start = self.next_lane;
        self.next_lane = (self.next_lane + 1) % n;
        for k in 0..n {
            let lane = LaneId((start + k) % n);
            if self.lane_can_accept(lane) {
                return self.append_on(lane, lpn);
            }
        }
        // Nothing obviously reclaimable anywhere: fall through so append_on
        // raises the GC-deadlock diagnostic.
        self.append_on(LaneId(start), lpn)
    }

    /// Whether a lane can take one more unit without wedging: it has open
    /// space, spare free blocks, or a victim reclaimable under the GC
    /// capacity guard.
    fn lane_can_accept(&self, lane: LaneId) -> bool {
        let l = &self.lanes[lane.0 as usize];
        if l.blocks[l.open as usize].free_pages() > 0 || l.free.len() >= 2 {
            return true;
        }
        if l.victim.is_some() {
            return true;
        }
        let dest = l.blocks[l.gc_open as usize].free_pages()
            + if l.free.is_empty() {
                0
            } else {
                self.units_per_block
            };
        l.blocks.iter().enumerate().any(|(i, b)| {
            let i = i as u32;
            let active = (i == l.open || i == l.gc_open) && b.free_pages() > 0;
            !active
                && !l.free.contains(&i)
                && !b.is_bad()
                && b.invalid_count() > 0
                && b.valid_count() <= dest
        })
    }

    /// Like [`Ftl::append`] but on a caller-chosen lane.
    pub fn append_on(&mut self, lane: LaneId, lpn: u64) -> (Placement, GcWork) {
        let mut gc_work = GcWork::default();
        // Incremental background migration while under pressure.
        if self.lane_needs_gc(lane) {
            let moved = self.migrate_units(lane, self.gc.units_per_host_write, &mut gc_work);
            let _ = moved;
        }
        // Invalidate the old copy on overwrite.
        if let Some(old) = self.l2p.get(lpn as usize).copied().flatten() {
            self.invalidate(old);
        }
        let mut forced_migrations = 0;
        let mut forced_erase = false;
        let ppa = loop {
            // Host appends keep one free block in reserve so GC relocation
            // always has somewhere to land (classic GC-reserve invariant).
            match self.try_place_with_reserve(lane, lpn, 1) {
                Some(ppa) => break ppa,
                None => {
                    // Open block full and no free block: force the victim out.
                    self.forced_gc_events += 1;
                    let mut w = GcWork::default();
                    let moved = self.migrate_units(lane, self.units_per_block, &mut w);
                    assert!(
                        moved > 0 || w.erased_blocks > 0,
                        "GC deadlock on lane {lane:?}: no reclaimable space; \
                         increase over-provisioning"
                    );
                    forced_migrations += w.migrated_units;
                    forced_erase |= w.erased_blocks > 0;
                    gc_work.migrated_units += w.migrated_units;
                    gc_work.erased_blocks += w.erased_blocks;
                }
            }
        };
        self.l2p[lpn as usize] = Some(ppa);
        (
            Placement {
                ppa,
                forced_migrations,
                forced_erase,
            },
            gc_work,
        )
    }

    fn try_place_with_reserve(&mut self, lane_id: LaneId, lpn: u64, reserve: usize) -> Option<Ppa> {
        let lane = &mut self.lanes[lane_id.0 as usize];
        if let Some(slot) = lane.blocks[lane.open as usize].append() {
            lane.p2l[lane.open as usize][slot as usize] = lpn;
            return Some(Ppa {
                lane: lane_id,
                block: lane.open,
                slot,
            });
        }
        // Open block is full: rotate to a free block, honouring the reserve.
        if lane.free.len() <= reserve {
            return None;
        }
        let next = lane.free.pop()?;
        lane.open = next;
        // A block from the free list is erased, so append cannot fail; `?`
        // keeps the path panic-free regardless.
        let slot = lane.blocks[next as usize].append()?;
        lane.p2l[next as usize][slot as usize] = lpn;
        Some(Ppa {
            lane: lane_id,
            block: next,
            slot,
        })
    }

    /// Places a GC relocation into the lane's dedicated GC destination
    /// block. The victim capacity guard in `pick_victim` guarantees this
    /// never fails for a victim whose drain has started.
    fn place_gc(&mut self, lane_id: LaneId, lpn: u64) -> Ppa {
        let lane = &mut self.lanes[lane_id.0 as usize];
        if let Some(slot) = lane.blocks[lane.gc_open as usize].append() {
            lane.p2l[lane.gc_open as usize][slot as usize] = lpn;
            return Ppa {
                lane: lane_id,
                block: lane.gc_open,
                slot,
            };
        }
        let next = lane
            .free
            .pop()
            // simlint: allow(S006): pick_victim's capacity guard (free.len() > 0 before a drain starts) is this fn's documented precondition
            .expect("capacity guard guarantees a free GC destination block");
        lane.gc_open = next;
        let slot = lane.blocks[next as usize]
            .append()
            // simlint: allow(S006): `next` was just popped from the free list, i.e. erased, and an erased block always accepts an append
            .expect("free block accepts appends");
        lane.p2l[next as usize][slot as usize] = lpn;
        Ppa {
            lane: lane_id,
            block: next,
            slot,
        }
    }

    /// Recovers from a program failure at `ppa` while writing `lpn`:
    /// records the damage, retires the failing block when that is safe
    /// (relocating its surviving units and substituting a spare via the
    /// remap checker, or marking it bad once spares run out), and
    /// re-appends `lpn` so read-after-write always resolves.
    ///
    /// Retirement is *deferred* — not skipped silently; it is counted in
    /// the result — whenever touching the block now would violate the
    /// GC invariants: the lane has a mid-drain victim (whose capacity
    /// guard reserved the GC destination), the block is the GC
    /// destination itself, the append point cannot rotate without
    /// eating the GC free-block reserve, or the survivors would not fit
    /// the guaranteed destination space.
    pub fn recover_program_fail(&mut self, ppa: Ppa, lpn: u64) -> ProgramFailRecovery {
        let lane_id = ppa.lane;
        let block = ppa.block;
        let mut out = ProgramFailRecovery {
            new_ppa: ppa,
            relocated_units: 0,
            erased_blocks: 0,
            remapped: false,
            marked_bad: false,
            deferred: false,
        };
        // The failed program physically damaged the block; the data
        // never landed, so drop the failed copy before retrying.
        self.lanes[lane_id.0 as usize].blocks[block as usize].note_program_fail();
        self.invalidate(ppa);
        self.l2p[lpn as usize] = None;

        let can_touch = {
            let lane = &self.lanes[lane_id.0 as usize];
            let rotation_ok = block != lane.open || lane.free.len() >= 2;
            lane.victim.is_none() && block != lane.gc_open && rotation_ok
        };
        let mut retire = false;
        if can_touch {
            // Rotate the host append point off the failing block first
            // (the free list held >= 2, so one stays in GC reserve).
            {
                let lane = &mut self.lanes[lane_id.0 as usize];
                if block == lane.open {
                    if let Some(next) = lane.free.pop() {
                        lane.open = next;
                    }
                }
            }
            // Survivors must fit the guaranteed GC destination space —
            // the same capacity guard pick_victim applies.
            let lane = &self.lanes[lane_id.0 as usize];
            let dest = lane.blocks[lane.gc_open as usize].free_pages()
                + if lane.free.is_empty() {
                    0
                } else {
                    self.units_per_block
                };
            retire = lane.blocks[block as usize].valid_count() <= dest;
        }
        if retire {
            // Relocate every surviving unit, then erase and retire.
            loop {
                let found = {
                    let lane = &self.lanes[lane_id.0 as usize];
                    let b = &lane.blocks[block as usize];
                    (0..self.units_per_block)
                        .find(|&s| b.is_valid(s))
                        .map(|s| (s, lane.p2l[block as usize][s as usize]))
                };
                let Some((slot, moved_lpn)) = found else {
                    break;
                };
                debug_assert_ne!(moved_lpn, u64::MAX, "valid slot must map back");
                {
                    let lane = &mut self.lanes[lane_id.0 as usize];
                    lane.blocks[block as usize].invalidate(slot);
                    lane.p2l[block as usize][slot as usize] = u64::MAX;
                }
                let new = self.place_gc(lane_id, moved_lpn);
                self.l2p[moved_lpn as usize] = Some(new);
                out.relocated_units += 1;
                self.total_migrated += 1;
            }
            {
                let lane = &mut self.lanes[lane_id.0 as usize];
                lane.blocks[block as usize].erase();
                lane.p2l[block as usize]
                    .iter_mut()
                    .for_each(|l| *l = u64::MAX);
            }
            out.erased_blocks += 1;
            self.total_erased += 1;
            let checker = &mut self.remap[lane_id.0 as usize];
            if checker.spares_left() > 0 && checker.retire(block).is_ok() {
                // A spare physically substitutes for the damaged block;
                // the (semi-virtual) block stays in service.
                self.remapped_blocks += 1;
                out.remapped = true;
                self.lanes[lane_id.0 as usize].free.insert(0, block);
            } else {
                self.lanes[lane_id.0 as usize].blocks[block as usize].mark_bad();
                self.physical_blocks_lost += self.blocks_per_virtual as u64;
                out.marked_bad = true;
            }
        } else {
            out.deferred = true;
        }

        // Retry the program elsewhere on the lane (forced GC included).
        let (placement, gc_work) = self.append_on(lane_id, lpn);
        out.new_ppa = placement.ppa;
        out.relocated_units += gc_work.migrated_units;
        out.erased_blocks += gc_work.erased_blocks;
        out
    }

    fn invalidate(&mut self, ppa: Ppa) {
        let lane = &mut self.lanes[ppa.lane.0 as usize];
        lane.blocks[ppa.block as usize].invalidate(ppa.slot);
        lane.p2l[ppa.block as usize][ppa.slot as usize] = u64::MAX;
    }

    /// Migrates up to `budget` valid units out of the lane's victim,
    /// erasing it when fully drained. Returns units actually moved.
    fn migrate_units(&mut self, lane_id: LaneId, budget: u32, work: &mut GcWork) -> u32 {
        let mut moved = 0;
        let units_per_block = self.units_per_block;
        while moved < budget {
            let Some(victim_block) = self.lanes[lane_id.0 as usize].pick_victim(units_per_block)
            else {
                break;
            };
            // Scan from the victim cursor for the next valid slot.
            let (next_valid, exhausted) = {
                let lane = &self.lanes[lane_id.0 as usize];
                let block = &lane.blocks[victim_block as usize];
                // simlint: allow(S006): pick_victim returned Some above, which always installs `lane.victim`
                let cursor = lane.victim.as_ref().expect("victim set").cursor;
                let mut found = None;
                let mut c = cursor;
                while c < self.units_per_block {
                    if block.is_valid(c) {
                        found = Some(c);
                        break;
                    }
                    c += 1;
                }
                (
                    found.map(|s| (s, lane.p2l[victim_block as usize][s as usize])),
                    found.is_none(),
                )
            };
            if exhausted {
                // Victim fully drained: erase it. If the victim *is* an
                // append point (it was full when picked), it stays the
                // append point — now empty — instead of entering the free
                // list, so the pointer is never left dangling at a freed
                // block.
                let worn = self.wear.per_erase_prob > 0.0
                    && self.wear_rng.chance(self.wear.per_erase_prob);
                let lane = &mut self.lanes[lane_id.0 as usize];
                lane.blocks[victim_block as usize].erase();
                lane.p2l[victim_block as usize]
                    .iter_mut()
                    .for_each(|l| *l = u64::MAX);
                let is_append_point = victim_block == lane.open || victim_block == lane.gc_open;
                let mut usable = true;
                if worn {
                    let checker = &mut self.remap[lane_id.0 as usize];
                    if self.wear.remap_enabled && checker.spares_left() > 0 {
                        // The remap checker substitutes a same-channel
                        // spare; the semi-virtual block stays usable and,
                        // for pairs, the partner block is not stranded.
                        // spares_left() > 0 was checked above; treat a
                        // (theoretically impossible) failure as no-remap.
                        if checker.retire(victim_block).is_ok() {
                            self.remapped_blocks += 1;
                        }
                    } else if !is_append_point {
                        lane.blocks[victim_block as usize].mark_bad();
                        self.physical_blocks_lost += self.blocks_per_virtual as u64;
                        usable = false;
                    }
                }
                if usable && !is_append_point {
                    lane.free.insert(0, victim_block);
                }
                lane.victim = None;
                work.erased_blocks += 1;
                self.total_erased += 1;
                // Stop if pressure is relieved.
                if !self.lane_needs_gc(lane_id) {
                    break;
                }
                continue;
            }
            // `exhausted` was handled above, so next_valid is Some; break
            // is the safe (unreachable) fallback rather than a panic.
            let Some((slot, lpn)) = next_valid else { break };
            debug_assert_ne!(lpn, u64::MAX, "valid slot must have a reverse mapping");
            // Invalidate the old copy and advance the cursor...
            {
                let lane = &mut self.lanes[lane_id.0 as usize];
                lane.blocks[victim_block as usize].invalidate(slot);
                lane.p2l[victim_block as usize][slot as usize] = u64::MAX;
                if let Some(v) = lane.victim.as_mut() {
                    v.cursor = slot + 1;
                }
            }
            // ...then re-place the unit into the GC destination block.
            let ppa = self.place_gc(lane_id, lpn);
            self.l2p[lpn as usize] = Some(ppa);
            moved += 1;
            work.migrated_units += 1;
            self.total_migrated += 1;
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc() -> GcPolicy {
        GcPolicy {
            low_watermark: 3,
            units_per_host_write: 4,
            parallel: false,
        }
    }

    fn small_ftl() -> Ftl {
        // 1 lane, 8 blocks of 4 units = 32 physical units.
        Ftl::new(1, 8, 4, gc())
    }

    #[test]
    fn lookup_follows_appends() {
        let mut f = small_ftl();
        let (p0, _) = f.append(10);
        let (p1, _) = f.append(11);
        assert_eq!(f.lookup(10), Some(p0.ppa));
        assert_eq!(f.lookup(11), Some(p1.ppa));
        assert_eq!(f.lookup(12), None);
        assert_ne!(p0.ppa, p1.ppa);
    }

    #[test]
    fn overwrite_moves_mapping_and_invalidates() {
        let mut f = small_ftl();
        let (first, _) = f.append(5);
        let (second, _) = f.append(5);
        assert_ne!(first.ppa, second.ppa);
        assert_eq!(f.lookup(5), Some(second.ppa));
    }

    #[test]
    fn round_robin_spreads_lanes() {
        let gcp = gc();
        let mut f = Ftl::new(4, 8, 4, gcp);
        let lanes: Vec<u32> = (0..8).map(|lpn| f.append(lpn).0.ppa.lane.0).collect();
        assert_eq!(lanes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_never_deadlock() {
        let mut f = small_ftl();
        // Logical space: 16 units against 32 physical => 50% OP.
        for round in 0..50u64 {
            for lpn in 0..16u64 {
                let (placement, _w) = f.append((lpn * 7 + round) % 16);
                assert!(placement.ppa.slot < 4);
            }
        }
        assert!(f.migrated_units() > 0, "GC must have migrated data");
        assert!(f.erased_blocks() > 0, "GC must have erased blocks");
        // All 16 logical units still resolve and point at valid slots.
        for lpn in 0..16u64 {
            let ppa = f.lookup(lpn).expect("mapped");
            assert!(ppa.block < 8 && ppa.slot < 4);
        }
    }

    #[test]
    fn l2p_and_p2l_stay_inverse() {
        let mut f = Ftl::new(2, 6, 4, gc());
        for i in 0..200u64 {
            f.append(i % 20);
        }
        for lpn in 0..20u64 {
            if let Some(ppa) = f.lookup(lpn) {
                let lane = &f.lanes[ppa.lane.0 as usize];
                assert_eq!(lane.p2l[ppa.block as usize][ppa.slot as usize], lpn);
                assert!(lane.blocks[ppa.block as usize].is_valid(ppa.slot));
            }
        }
    }

    #[test]
    fn valid_unit_count_is_conserved() {
        let mut f = Ftl::new(2, 6, 4, gc());
        let logical = 16u64;
        for i in 0..500u64 {
            f.append(i % logical);
        }
        let valid_total: u32 = f
            .lanes
            .iter()
            .flat_map(|l| l.blocks.iter())
            .map(|b| b.valid_count())
            .sum();
        assert_eq!(valid_total as u64, logical);
    }

    #[test]
    fn remap_checker_absorbs_wear() {
        // Every erase wears its block out, but a deep spare pool lets the
        // remap checker absorb all of it: no capacity is ever stranded and
        // the lane keeps cycling.
        let wear = WearConfig {
            per_erase_prob: 1.0,
            remap_enabled: true,
            spares_per_lane: 512,
            seed: 1,
        };
        let mut f = Ftl::new(1, 8, 4, gc()).with_wear(wear, 2);
        for round in 0..20u64 {
            for lpn in 0..16u64 {
                f.append((lpn + round) % 16);
            }
        }
        assert!(f.erased_blocks() > 0);
        assert!(f.remapped_blocks() > 0, "remap never engaged");
        assert_eq!(f.physical_blocks_lost(), 0, "remap must prevent stranding");
        for lpn in 0..16u64 {
            assert!(f.lookup(lpn).is_some());
        }
    }

    #[test]
    fn unremapped_wear_strands_pair_capacity_until_wedged() {
        // Without the remap checker every worn block strands its pair
        // partner too; the lane loses capacity and eventually wedges.
        let wear = WearConfig {
            per_erase_prob: 1.0,
            remap_enabled: false,
            spares_per_lane: 0,
            seed: 1,
        };
        let mut f = Ftl::new(1, 24, 4, gc()).with_wear(wear, 2);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for i in 0..100_000u64 {
                f.append(i % 16);
            }
        }));
        assert!(
            outcome.is_err(),
            "total wear without remap must wedge the lane"
        );
        assert!(f.physical_blocks_lost() > 0, "no capacity stranded");
        // Pair-lane accounting: each lost virtual block strands 2 physical.
        assert_eq!(f.physical_blocks_lost() % 2, 0);
        assert_eq!(f.remapped_blocks(), 0);
    }

    #[test]
    fn program_fail_recovery_preserves_mappings() {
        // Plenty of spares: every recovery should remap, never mark bad.
        let wear = WearConfig {
            per_erase_prob: 0.0,
            remap_enabled: true,
            spares_per_lane: 64,
            seed: 1,
        };
        let mut f = Ftl::new(1, 8, 4, gc()).with_wear(wear, 1);
        // Lay down some data so the failing block has survivors.
        for lpn in 0..6u64 {
            f.append(lpn);
        }
        let (p, _) = f.append(6);
        let rec = f.recover_program_fail(p.ppa, 6);
        assert_ne!(rec.new_ppa, p.ppa, "retry must land elsewhere");
        assert_eq!(f.lookup(6), Some(rec.new_ppa), "read-after-write");
        assert!(rec.remapped || rec.deferred, "{rec:?}");
        assert!(!rec.marked_bad);
        // Every earlier write still resolves, each to a distinct ppa.
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..7u64 {
            let ppa = f.lookup(lpn).expect("mapped after recovery");
            assert!(seen.insert(ppa), "duplicate mapping at {lpn}");
            let lane = &f.lanes[ppa.lane.0 as usize];
            assert!(lane.blocks[ppa.block as usize].is_valid(ppa.slot));
            assert_eq!(lane.p2l[ppa.block as usize][ppa.slot as usize], lpn);
        }
    }

    #[test]
    fn program_fail_without_spares_marks_bad_or_defers() {
        let mut f = Ftl::new(1, 8, 4, gc());
        for lpn in 0..6u64 {
            f.append(lpn);
        }
        let (p, _) = f.append(6);
        let rec = f.recover_program_fail(p.ppa, 6);
        assert_eq!(f.lookup(6), Some(rec.new_ppa));
        // Exactly one outcome per failure.
        let outcomes =
            u32::from(rec.remapped) + u32::from(rec.marked_bad) + u32::from(rec.deferred);
        assert_eq!(outcomes, 1, "{rec:?}");
        if rec.marked_bad {
            assert_eq!(f.physical_blocks_lost(), 1);
        }
    }

    #[test]
    fn repeated_program_fails_never_corrupt_state() {
        let wear = WearConfig {
            per_erase_prob: 0.0,
            remap_enabled: true,
            spares_per_lane: 256,
            seed: 3,
        };
        let mut f = Ftl::new(2, 8, 4, gc()).with_wear(wear, 1);
        let logical = 16u64;
        for i in 0..400u64 {
            let lpn = (i * 11 + 3) % logical;
            let (p, _) = f.append(lpn);
            if i % 5 == 0 {
                let rec = f.recover_program_fail(p.ppa, lpn);
                assert_eq!(f.lookup(lpn), Some(rec.new_ppa));
            }
        }
        // Valid units conserved: one live copy per logical unit written.
        let valid_total: u32 = f
            .lanes
            .iter()
            .flat_map(|l| l.blocks.iter())
            .map(|b| b.valid_count())
            .sum();
        assert_eq!(valid_total as u64, logical);
    }

    #[test]
    #[should_panic(expected = "GC deadlock")]
    fn overfull_logical_space_is_detected() {
        // Logical space == physical space: GC has nothing to reclaim.
        let mut f = Ftl::new(
            1,
            4,
            2,
            GcPolicy {
                low_watermark: 0,
                units_per_host_write: 0,
                parallel: false,
            },
        );
        for lpn in 0..8u64 {
            f.append(lpn);
        }
    }
}
