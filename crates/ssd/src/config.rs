//! Device configuration.
//!
//! Every architectural lever the paper discusses is an explicit field here —
//! super-channels, split-DMA, suspend/resume, DRAM buffering, GC policy,
//! over-provisioning — so ablation benchmarks can flip one mechanism at a
//! time. Presets for the two devices under test live in
//! [`crate::presets`].

use ull_flash::FlashSpec;
use ull_simkit::SimDuration;

use crate::ftl::WearConfig;

/// Host-visible mapping granularity: both devices map at 4 KB internally
/// (the Intel 750's indirection unit, and one split-DMA pair of 2 KB Z-NAND
/// pages).
pub const MAP_UNIT_BYTES: u32 = 4096;

/// A rare long-latency internal event (read retry, ECC recovery, mapping
/// checkpoint, wear-levelling move). These produce the "five-nines" tails of
/// fig. 4b / fig. 11 that average latency hides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailEvent {
    /// Per-operation probability of the event.
    pub probability: f64,
    /// Extra delay charged when the event fires.
    pub delay: SimDuration,
}

impl TailEvent {
    /// An event that never fires.
    pub const NONE: TailEvent = TailEvent {
        probability: 0.0,
        delay: SimDuration::ZERO,
    };
}

/// Read-cache behaviour of the device's internal DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadCachePolicy {
    /// Probability that a *sequential* read hits the readahead buffer.
    pub seq_hit_prob: f64,
    /// Probability that a *random* read hits cached data.
    pub rnd_hit_prob: f64,
    /// DRAM service time on a hit (before PCIe transfer).
    pub hit_latency: SimDuration,
}

/// Power-model constants. Flash array energy comes from
/// [`ull_flash::FlashSpec`]; these cover everything around the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Idle platform power (controller quiescent + DRAM refresh), watts.
    pub idle_w: f64,
    /// Controller + DRAM + PCIe PHY energy per host read command, nanojoules.
    pub host_read_nj: f64,
    /// Controller + DRAM + PCIe PHY energy per host write command,
    /// nanojoules. Writes move data through DRAM twice (in + flush).
    pub host_write_nj: f64,
    /// Controller energy per GC migration unit, nanojoules.
    pub gc_unit_nj: f64,
}

/// Garbage-collection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcPolicy {
    /// Start background migration when a lane's free-block count drops to
    /// this watermark.
    pub low_watermark: u32,
    /// Migration units moved per host write while under the watermark
    /// (incremental GC credit).
    pub units_per_host_write: u32,
    /// Whether GC migration can overlap host service across the lane's dies
    /// (the ULL device's parallel, suspend/resume-covered GC). When false,
    /// migration serializes with host work on the lane (conventional
    /// foreground-ish GC).
    pub parallel: bool,
}

/// Full description of one simulated SSD.
///
/// Construct via [`SsdConfig::builder`] or a preset, then pass to
/// [`crate::Ssd::new`].
///
/// # Examples
///
/// ```
/// use ull_ssd::presets;
///
/// let ull = presets::ull_800g();
/// assert!(ull.super_channel);
/// let nvme = presets::nvme750();
/// assert!(!nvme.super_channel);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Marketing name used in reports.
    pub name: &'static str,
    /// Flash technology populated in this device.
    pub flash: FlashSpec,
    /// Number of physical channels.
    pub channels: u32,
    /// Dies per channel.
    pub ways: u32,
    /// Pair adjacent channels into super-channels (§II-A2). Requires an even
    /// channel count.
    pub super_channel: bool,
    /// Split each 4 KB host unit across the pair with the split-DMA engine.
    /// Only meaningful with `super_channel`; separate so the ablation bench
    /// can isolate it.
    pub split_dma: bool,
    /// Allow reads to suspend in-flight programs (§II-A3); requires flash
    /// with `program_suspend`.
    pub suspend_resume: bool,
    /// Planes per die that one program engages (multi-plane one-shot
    /// programming): multiplies the data written per `tPROG`.
    pub planes: u32,
    /// Per-channel bus bandwidth, MB/s.
    pub channel_mbps: u32,
    /// Fixed per-transfer channel setup cost.
    pub channel_setup: SimDuration,
    /// PCIe link bandwidth, MB/s (x4 Gen3 ≈ 3200).
    pub pcie_mbps: u32,
    /// Firmware path length for a read command.
    pub controller_read: SimDuration,
    /// Firmware path length for a write command.
    pub controller_write: SimDuration,
    /// Controller command-processing occupancy per host command (caps IOPS).
    pub controller_per_op: SimDuration,
    /// Simulated logical capacity in bytes. Scaled down from the physical
    /// device (DESIGN.md §1) so mapping tables stay in memory; geometry
    /// ratios are preserved.
    pub capacity_bytes: u64,
    /// Scaled pages-per-block used together with the scaled capacity, so
    /// each lane still owns enough blocks (~100+) for GC victim aging — the
    /// property WA depends on. `None` uses the flash technology's real
    /// block size (appropriate only at full capacity).
    pub pages_per_block_override: Option<u32>,
    /// Physical over-provisioning fraction (extra blocks beyond capacity).
    pub overprovision: f64,
    /// DRAM write-back buffer size, in 4 KB units.
    pub write_buffer_units: u32,
    /// How long a partially filled program row may wait for co-packed units
    /// before it is flushed padded.
    pub row_flush_timeout: SimDuration,
    /// Read-cache policy.
    pub read_cache: ReadCachePolicy,
    /// GC policy.
    pub gc: GcPolicy,
    /// Flash wear-out and bad-block remapping policy.
    pub wear: WearConfig,
    /// Rare long-latency events on reads.
    pub read_tail: TailEvent,
    /// Rare long-latency events on writes.
    pub write_tail: TailEvent,
    /// Power-model constants.
    pub power: PowerParams,
    /// RNG seed for this device's stochastic draws.
    pub seed: u64,
}

impl SsdConfig {
    /// Starts a builder pre-filled from this configuration.
    pub fn builder(self) -> SsdConfigBuilder {
        SsdConfigBuilder { cfg: self }
    }

    /// Total dies in the device.
    pub fn dies(&self) -> u32 {
        self.channels * self.ways
    }

    /// Logical 4 KB units addressable by the host.
    pub fn logical_units(&self) -> u64 {
        self.capacity_bytes / MAP_UNIT_BYTES as u64
    }

    /// Whether host units are split across a channel pair.
    pub fn splits_across_pair(&self) -> bool {
        self.super_channel && self.split_dma
    }

    /// Pages per erase block after any scaled-geometry override.
    pub fn effective_pages_per_block(&self) -> u32 {
        self.pages_per_block_override
            .unwrap_or(self.flash.pages_per_block)
    }

    /// 4 KB units per flash program row: one split pair of 2 KB pages for
    /// the ULL device, `page_size / 4K` co-packed units otherwise.
    pub fn units_per_row(&self) -> u32 {
        if self.splits_across_pair() {
            (2 * self.flash.page_size / MAP_UNIT_BYTES).max(1)
        } else {
            (self.flash.page_size / MAP_UNIT_BYTES).max(1)
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency
    /// found (odd channel count with super-channels, suspend/resume on flash
    /// that cannot suspend, zero capacity, ...).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.channels == 0 || self.ways == 0 {
            return Err(ConfigError::new("channels and ways must be non-zero"));
        }
        if self.planes == 0 {
            return Err(ConfigError::new("planes must be non-zero"));
        }
        if self.super_channel && !self.channels.is_multiple_of(2) {
            return Err(ConfigError::new(
                "super-channels require an even channel count",
            ));
        }
        if self.split_dma && !self.super_channel {
            return Err(ConfigError::new("split-DMA requires super-channels"));
        }
        if self.suspend_resume && !self.flash.program_suspend {
            return Err(ConfigError::new(
                "suspend/resume requires flash with program suspend",
            ));
        }
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(MAP_UNIT_BYTES as u64) {
            return Err(ConfigError::new(
                "capacity must be a non-zero multiple of 4KB",
            ));
        }
        if !(0.0..=1.0).contains(&self.overprovision) {
            return Err(ConfigError::new("overprovision must be in [0, 1]"));
        }
        if self.channel_mbps == 0 || self.pcie_mbps == 0 {
            return Err(ConfigError::new("bus bandwidths must be non-zero"));
        }
        if self.write_buffer_units == 0 {
            return Err(ConfigError::new("write buffer must hold at least one unit"));
        }
        Ok(())
    }
}

/// Error returned by [`SsdConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid ssd configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Fluent modifier for [`SsdConfig`]; used heavily by the ablation benches.
///
/// # Examples
///
/// ```
/// use ull_ssd::presets;
///
/// let no_suspend = presets::ull_800g()
///     .builder()
///     .suspend_resume(false)
///     .build()
///     .expect("still valid");
/// assert!(!no_suspend.suspend_resume);
/// ```
#[derive(Debug, Clone)]
pub struct SsdConfigBuilder {
    cfg: SsdConfig,
}

impl SsdConfigBuilder {
    /// Toggles super-channel pairing (and disables split-DMA when off).
    pub fn super_channel(mut self, on: bool) -> Self {
        self.cfg.super_channel = on;
        if !on {
            self.cfg.split_dma = false;
        }
        self
    }

    /// Toggles the split-DMA engine.
    pub fn split_dma(mut self, on: bool) -> Self {
        self.cfg.split_dma = on;
        self
    }

    /// Toggles read-over-program suspend/resume.
    pub fn suspend_resume(mut self, on: bool) -> Self {
        self.cfg.suspend_resume = on;
        self
    }

    /// Sets the simulated logical capacity.
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.cfg.capacity_bytes = bytes;
        self
    }

    /// Sets the DRAM write-buffer size in 4 KB units.
    pub fn write_buffer_units(mut self, units: u32) -> Self {
        self.cfg.write_buffer_units = units;
        self
    }

    /// Sets the over-provisioning fraction.
    pub fn overprovision(mut self, op: f64) -> Self {
        self.cfg.overprovision = op;
        self
    }

    /// Replaces the GC policy.
    pub fn gc(mut self, gc: GcPolicy) -> Self {
        self.cfg.gc = gc;
        self
    }

    /// Replaces the wear-out policy.
    pub fn wear(mut self, wear: WearConfig) -> Self {
        self.cfg.wear = wear;
        self
    }

    /// Replaces the read-cache policy.
    pub fn read_cache(mut self, rc: ReadCachePolicy) -> Self {
        self.cfg.read_cache = rc;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SsdConfig::validate`] failures.
    pub fn build(self) -> Result<SsdConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn presets_validate() {
        presets::ull_800g().validate().unwrap();
        presets::nvme750().validate().unwrap();
    }

    #[test]
    fn units_per_row_matches_geometry() {
        // ULL: one 4KB unit per split pair of 2KB pages.
        assert_eq!(presets::ull_800g().units_per_row(), 1);
        // NVMe-class: four 4KB units per 16KB page.
        assert_eq!(presets::nvme750().units_per_row(), 4);
    }

    #[test]
    fn rejects_odd_super_channels() {
        let bad = {
            let mut c = presets::ull_800g();
            c.channels = 15;
            c
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn rejects_split_dma_without_super_channel() {
        let r = presets::ull_800g()
            .builder()
            .super_channel(false)
            .split_dma(true)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn rejects_suspend_on_non_suspendable_flash() {
        let mut c = presets::nvme750();
        c.suspend_resume = true;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_round_trip() {
        let c = presets::ull_800g()
            .builder()
            .capacity_bytes(1 << 30)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(c.capacity_bytes, 1 << 30);
        assert_eq!(c.seed, 99);
        assert_eq!(c.logical_units(), (1 << 30) / 4096);
    }
}
