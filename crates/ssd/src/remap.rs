//! The split-DMA engine's remap checker (§II-A2).
//!
//! Super-channels stripe each 4 KB unit across a *pair* of physical blocks
//! (same block index on both channels of the pair). A bad block on one
//! channel would therefore waste its healthy partner. The remap checker
//! substitutes a spare block on the *same* channel for the bad one and
//! exposes a dense "semi-virtual" block space to the FTL, so pairing always
//! resolves and no capacity is stranded beyond the spare itself.

use std::collections::BTreeMap;

/// Per-channel bad-block remapping table.
///
/// # Examples
///
/// ```
/// use ull_ssd::RemapChecker;
///
/// let mut r = RemapChecker::new(100, 4); // 100 data blocks, 4 spares
/// assert_eq!(r.resolve(7), Some(7));     // healthy blocks map to themselves
/// r.retire(7).unwrap();                  // block 7 goes bad
/// let phys = r.resolve(7).unwrap();
/// assert!(phys >= 100);                  // ...now served by a spare
/// ```
#[derive(Debug, Clone, Default)]
pub struct RemapChecker {
    data_blocks: u32,
    spares_total: u32,
    spares_used: u32,
    map: BTreeMap<u32, u32>,
}

/// Error when retiring a block with no spares left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfSpares;

impl core::fmt::Display for OutOfSpares {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "no spare blocks left to remap onto")
    }
}

impl std::error::Error for OutOfSpares {}

impl RemapChecker {
    /// Creates a checker managing `data_blocks` semi-virtual blocks backed
    /// by `spares` physical spares.
    pub fn new(data_blocks: u32, spares: u32) -> Self {
        RemapChecker {
            data_blocks,
            spares_total: spares,
            spares_used: 0,
            map: BTreeMap::new(),
        }
    }

    /// Number of semi-virtual (always usable) blocks exposed to the FTL.
    pub fn data_blocks(&self) -> u32 {
        self.data_blocks
    }

    /// Spares not yet consumed.
    pub fn spares_left(&self) -> u32 {
        self.spares_total - self.spares_used
    }

    /// Resolves a semi-virtual block index to a physical one, or `None` if
    /// the index is out of range.
    pub fn resolve(&self, virt: u32) -> Option<u32> {
        if virt >= self.data_blocks {
            return None;
        }
        Some(self.map.get(&virt).copied().unwrap_or(virt))
    }

    /// Marks the physical block behind `virt` bad and remaps onto a spare.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfSpares`] when every spare has been consumed; the
    /// caller should then shrink usable capacity (the failure mode the remap
    /// checker exists to postpone).
    pub fn retire(&mut self, virt: u32) -> Result<u32, OutOfSpares> {
        assert!(
            virt < self.data_blocks,
            "retiring out-of-range block {virt}"
        );
        if self.spares_used == self.spares_total {
            return Err(OutOfSpares);
        }
        let spare = self.data_blocks + self.spares_used;
        self.spares_used += 1;
        self.map.insert(virt, spare);
        Ok(spare)
    }

    /// Number of remapped (previously bad) blocks.
    pub fn remapped(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_until_retired() {
        let r = RemapChecker::new(10, 2);
        for b in 0..10 {
            assert_eq!(r.resolve(b), Some(b));
        }
        assert_eq!(r.resolve(10), None);
    }

    #[test]
    fn retire_consumes_spares_in_order() {
        let mut r = RemapChecker::new(10, 2);
        assert_eq!(r.retire(3), Ok(10));
        assert_eq!(r.retire(5), Ok(11));
        assert_eq!(r.retire(7), Err(OutOfSpares));
        assert_eq!(r.resolve(3), Some(10));
        assert_eq!(r.resolve(5), Some(11));
        assert_eq!(r.resolve(7), Some(7)); // failed retire leaves mapping
        assert_eq!(r.spares_left(), 0);
        assert_eq!(r.remapped(), 2);
    }

    #[test]
    fn resolution_stays_injective() {
        let mut r = RemapChecker::new(50, 10);
        for b in [1u32, 9, 17, 33, 49] {
            r.retire(b).unwrap();
        }
        let mut phys = std::collections::HashSet::new();
        for b in 0..50 {
            assert!(phys.insert(r.resolve(b).unwrap()), "collision at {b}");
        }
    }
}
