//! Deterministic parallel execution for independent simulation cells.
//!
//! The experiment suite is a large collection of *independent* sim cells:
//! each owns a fresh `Host`/`Ssd`/RNG and shares no state with its
//! siblings, so they may run on any thread, in any order, without
//! changing what each one computes. What must NOT vary with the worker
//! count is the *merged* output. This crate provides exactly that
//! guarantee:
//!
//! 1. every task is a `FnOnce() -> T` closure that owns its inputs,
//! 2. workers pull tasks from a shared atomic cursor (dynamic load
//!    balancing — long cells do not serialize behind short ones), and
//! 3. results are written into a slot table indexed by *declaration
//!    order* and collected only after all workers join.
//!
//! Because the merge reads the slot table in index order, the returned
//! `Vec` is byte-for-byte the same whatever `jobs` was — running with
//! `jobs = 1` takes a purely serial path with no threads at all, and
//! `jobs = N` merely changes wall-clock time. See
//! `docs/DETERMINISM.md` ("parallel cells, serial merge") for the
//! argument in full.
//!
//! Two faces of the same discipline live here:
//!
//! - [`run_ordered`] / [`run_sharded`] — experiment-level: independent
//!   sim cells distributed over workers (and, for `--shards N`,
//!   partitioned round-robin into serial groups first), merged in
//!   declaration order.
//! - [`ParallelRunner`] — event-level: the multi-core
//!   [`WindowRunner`](ull_simkit::WindowRunner) that drains the shards
//!   of one `ull_simkit::ShardedWorld` window concurrently (see
//!   `docs/SHARDING.md`).
//!
//! This is the one crate in the workspace allowed to touch threads:
//! simlint's S005 rule carves out `ull-exec` precisely because it is
//! *not* part of the event loop — nothing here ever consults or
//! advances sim time.
//!
//! ```
//! let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
//! let out = ull_exec::run_ordered(4, tasks);
//! assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use ull_simkit::WindowRunner;

/// One entry of the slot table: a pending task, a task checked out by a
/// worker, or a finished result.
enum Slot<F, T> {
    /// Task not yet claimed.
    Task(F),
    /// Task checked out by a worker (or already harvested).
    Empty,
    /// Finished result awaiting the ordered merge.
    Done(T),
}

/// Runs `tasks` on up to `jobs` worker threads and returns their results
/// **in declaration order**, regardless of which worker finished which
/// task when.
///
/// - `jobs <= 1` runs the tasks serially on the calling thread with no
///   thread machinery at all (the reference ordering).
/// - `jobs > 1` spawns `min(jobs, tasks.len())` scoped workers that pull
///   task indices from a shared cursor.
///
/// The output is guaranteed identical for every `jobs` value as long as
/// each task is a pure function of its owned inputs — which is exactly
/// the contract of a sim cell.
///
/// # Panics
///
/// If a task panics, the panic is propagated to the caller after the
/// scope joins (no result is silently dropped).
pub fn run_ordered<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        // Serial reference path: no threads, no locks.
        return tasks.into_iter().map(|f| f()).collect();
    }

    let slots: Vec<Mutex<Slot<F, T>>> = tasks
        .into_iter()
        .map(|f| Mutex::new(Slot::Task(f)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let workers = jobs.min(n);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Check the task out of its slot so the closure runs
                // without holding the lock.
                let task = {
                    let mut slot = slots[i]
                        .lock()
                        .expect("no worker panics while holding a slot lock");
                    match std::mem::replace(&mut *slot, Slot::Empty) {
                        Slot::Task(f) => f,
                        // Unreachable: the cursor hands each index to
                        // exactly one worker.
                        _ => break,
                    }
                };
                let out = task();
                *slots[i]
                    .lock()
                    .expect("no worker panics while holding a slot lock") = Slot::Done(out);
            });
        }
    });

    // Serial merge, in declaration order.
    slots
        .into_iter()
        .map(|slot| {
            let slot = slot
                .into_inner()
                .expect("workers store results before the scope joins");
            match slot {
                Slot::Done(t) => t,
                // Unreachable: the scope joins all workers, and a worker
                // panic propagates out of `thread::scope` above.
                _ => unreachable!("scope joined with an unfinished slot"),
            }
        })
        .collect()
}

/// A sensible default worker count: the machine's available parallelism,
/// falling back to 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `tasks` partitioned round-robin into `shards` groups: each group
/// executes its tasks serially in ascending declaration index, groups run
/// concurrently on up to `jobs` workers via [`run_ordered`], and the
/// results scatter back to declaration order.
///
/// This is the experiment-level face of `reproduce --shards N`: like
/// `--jobs`, the shard count partitions *independent* cells, so the
/// merged output is byte-identical for every `shards` value by the same
/// "parallel cells, serial merge" argument (`docs/SHARDING.md` covers
/// the event-level sharding inside one sim).
///
/// `shards <= 1` degenerates to [`run_ordered`] exactly.
pub fn run_sharded<T, F>(jobs: usize, shards: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if shards <= 1 {
        return run_ordered(jobs, tasks);
    }
    let n = tasks.len();
    let groups = shards.min(n.max(1));
    let mut buckets: Vec<Vec<(usize, F)>> = (0..groups).map(|_| Vec::new()).collect();
    for (i, f) in tasks.into_iter().enumerate() {
        buckets[i % groups].push((i, f));
    }
    let shard_tasks: Vec<_> = buckets
        .into_iter()
        .map(|bucket| {
            move || {
                bucket
                    .into_iter()
                    .map(|(i, f)| (i, f()))
                    .collect::<Vec<(usize, T)>>()
            }
        })
        .collect();
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for bucket in run_ordered(jobs, shard_tasks) {
        for (i, t) in bucket {
            slots[i] = Some(t);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task runs in exactly one shard"))
        .collect()
}

/// The multi-core [`WindowRunner`]: each simulation window fans its
/// shards out over up to `jobs` scoped threads and joins before the
/// exchange barrier.
///
/// Shard state is disjoint (`&mut` handed to exactly one worker) and the
/// window protocol makes drain order immaterial, so this changes
/// wall-clock time only — `ull_simkit::SerialRunner` produces the same
/// bytes. `jobs <= 1` takes the serial path with no thread machinery.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    /// Maximum worker threads per window.
    pub jobs: usize,
}

impl WindowRunner for ParallelRunner {
    fn run<S: Send>(&mut self, shards: &mut [S], work: impl Fn(usize, &mut S) + Sync) {
        if self.jobs <= 1 || shards.len() <= 1 {
            for (i, s) in shards.iter_mut().enumerate() {
                work(i, s);
            }
            return;
        }
        // One contiguous stripe of shards per worker, at most `jobs`
        // workers; window barriers are frequent, so keep the per-window
        // spawn count bounded.
        let workers = self.jobs.min(shards.len());
        let stripe = shards.len().div_ceil(workers);
        let work = &work;
        thread::scope(|scope| {
            for (ci, chunk) in shards.chunks_mut(stripe).enumerate() {
                scope.spawn(move || {
                    for (j, s) in chunk.iter_mut().enumerate() {
                        work(ci * stripe + j, s);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn serial_path_preserves_order() {
        let tasks: Vec<_> = (0..10u64).map(|i| move || i * 3).collect();
        let out = run_ordered(1, tasks);
        assert_eq!(out, (0..10u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_for_every_job_count() {
        let expected: Vec<u64> = (0..50u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            let tasks: Vec<_> = (0..50u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9))
                .collect();
            assert_eq!(run_ordered(jobs, tasks), expected, "jobs={jobs}");
        }
    }

    #[test]
    fn order_holds_even_when_early_tasks_finish_last() {
        // Earlier tasks sleep longer, so completion order is the reverse
        // of declaration order — the merge must undo that.
        let tasks: Vec<_> = (0..6u64)
            .map(|i| {
                move || {
                    thread::sleep(Duration::from_millis((6 - i) * 2));
                    i
                }
            })
            .collect();
        assert_eq!(run_ordered(6, tasks), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_jobs_than_tasks() {
        let tasks: Vec<_> = (0..3u64).map(|i| move || i + 100).collect();
        assert_eq!(run_ordered(32, tasks), vec![100, 101, 102]);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run_ordered(4, none).is_empty());
        assert_eq!(run_ordered(4, vec![|| 7u8]), vec![7]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        static CALLS: AtomicU64 = AtomicU64::new(0);
        let tasks: Vec<_> = (0..40u64)
            .map(|i| {
                move || {
                    CALLS.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let out = run_ordered(4, tasks);
        assert_eq!(out.len(), 40);
        assert_eq!(CALLS.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn sharded_matches_serial_for_every_shard_and_job_count() {
        let expected: Vec<u64> = (0..23u64).map(|i| i.wrapping_mul(31) ^ 7).collect();
        for shards in [1, 2, 3, 4, 8, 23, 64] {
            for jobs in [1, 2, 4] {
                let tasks: Vec<_> = (0..23u64).map(|i| move || i.wrapping_mul(31) ^ 7).collect();
                assert_eq!(
                    run_sharded(jobs, shards, tasks),
                    expected,
                    "shards={shards} jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn sharded_handles_empty_task_lists() {
        let none: Vec<fn() -> u8> = Vec::new();
        assert!(run_sharded(4, 4, none).is_empty());
    }

    #[test]
    fn parallel_runner_matches_serial_runner() {
        use ull_simkit::WindowRunner;
        let run = |runner: &mut dyn FnMut(&mut [u64])| {
            let mut shards: Vec<u64> = (0..7).collect();
            runner(&mut shards);
            shards
        };
        let serial = run(&mut |s| ull_simkit::SerialRunner.run(s, |i, v| *v += i as u64 * 100));
        for jobs in [1, 2, 4, 16] {
            let par = run(&mut |s| ParallelRunner { jobs }.run(s, |i, v| *v += i as u64 * 100));
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }
}
