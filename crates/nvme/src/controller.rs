//! The device-side NVMe controller: fetches submissions, drives the SSD
//! backend, posts completions with MSI timing.
//!
//! The controller is shared by every host path in the study — the kernel
//! stack (interrupt, polled, hybrid completion) and SPDK — which is what
//! makes their comparison apples-to-apples: only the host-side software
//! differs.

use ull_faults::{FaultPlan, SALT_NVME};
use ull_probe::DeviceSpan;
use ull_simkit::{Component, Engine, Scheduler, SimDuration, SimTime, SplitMix64};
use ull_ssd::{DeviceCompletion, Ssd, SsdCommand};

use crate::command::{Completion, NvmeCommand, Opcode};
use crate::queue::{CompletionQueue, QueueFull, SubmissionQueue};

/// One submission/completion queue pair (one per host core, as blk-mq maps
/// them).
#[derive(Debug)]
pub struct QueuePair {
    /// Host-filled submission ring.
    pub sq: SubmissionQueue,
    /// Controller-filled completion ring.
    pub cq: CompletionQueue,
    /// Completions computed by the backend but not yet visible to the host,
    /// ordered by `(completion instant, cid)` — the engine wheel's keyed
    /// tie-break reproduces the historical `BinaryHeap<Reverse<(u64, u16)>>`
    /// order exactly (cids are unique among in-flight commands, so the
    /// insertion-sequence tail of the wheel's ordering never decides).
    pending: Engine<u16>,
}

impl QueuePair {
    fn new(size: u16) -> Self {
        QueuePair {
            sq: SubmissionQueue::new(size),
            cq: CompletionQueue::new(size),
            pending: Engine::new(),
        }
    }
}

/// The device-scheduler component: drains due completions from a queue
/// pair's pending timeline into its CQ ring.
///
/// Same-instant completions arrive as one batch and post as a slice —
/// coalesced interrupts deliver many CQEs per doorbell, and the slice
/// drain amortizes the per-event dispatch (ROADMAP item 5). CQ
/// backpressure is head-of-line: the first completion that does not fit
/// re-parks itself and everything behind it at the current instant under
/// their cid keys (cids are unique, so this restores the exact
/// `(time, cid)` order) and halts the drain until the host consumes
/// entries.
struct CqPump<'a> {
    cq: &'a mut CompletionQueue,
    /// SQ head to advertise in posted CQEs; the SQ does not move during
    /// a delivery drain, so one read serves the whole batch.
    sqhd: u16,
}

impl CqPump<'_> {
    /// Posts one cid; on a full CQ re-parks it and halts. Returns
    /// whether the post fit.
    fn post(&mut self, now: SimTime, cid: u16, sched: &mut Scheduler<'_, u16>) -> bool {
        if self.cq.post(cid, self.sqhd, true).is_err() {
            sched.at_keyed(now, u64::from(cid), cid);
            sched.halt();
            return false;
        }
        true
    }
}

impl Component for CqPump<'_> {
    type Event = u16;

    fn on_event(&mut self, now: SimTime, cid: u16, sched: &mut Scheduler<'_, u16>) {
        self.post(now, cid, sched);
    }

    fn on_batch(&mut self, now: SimTime, batch: &mut Vec<u16>, sched: &mut Scheduler<'_, u16>) {
        for (i, &cid) in batch.iter().enumerate() {
            if !self.post(now, cid, sched) {
                // Head-of-line blocked: the tail re-parks behind the
                // full-CQ cid, keyed so order is preserved.
                for &blocked in &batch[i + 1..] {
                    sched.at_keyed(now, u64::from(blocked), blocked);
                }
                break;
            }
        }
        batch.clear();
    }
}

/// The NVMe controller model.
///
/// # Examples
///
/// ```
/// use ull_nvme::{NvmeCommand, NvmeController};
/// use ull_simkit::SimTime;
/// use ull_ssd::{presets, Ssd};
///
/// let ssd = Ssd::new(presets::ull_800g())?;
/// let mut ctrl = NvmeController::new(ssd, 1, 64);
/// ctrl.submit(0, NvmeCommand::read(1, 0, 4096)).unwrap();
/// ctrl.ring_sq_doorbell(0, SimTime::ZERO);
/// let done = ctrl.next_completion_at(0).expect("one command in flight");
/// let c = ctrl.poll(0, done).expect("completion visible at its instant");
/// assert_eq!(c.cid, 1);
/// # Ok::<(), ull_ssd::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct NvmeController {
    ssd: Ssd,
    qpairs: Vec<QueuePair>,
    /// PCIe MSI delivery latency (completion instant -> host IRQ).
    msi_latency: SimDuration,
    /// Per-command device detail, retrievable once after completion.
    ///
    /// A linear-scan vector, not a map: the host collects details
    /// immediately after each doorbell, so the set holds at most one
    /// command batch (plus fault-dropped stragglers) and a handful of
    /// cache-resident compares beats a tree walk per command.
    details: Vec<((u16, u16), DeviceCompletion)>,
    /// Per-command device-internal spans, kept only while probing is on
    /// (pure observation: the set never influences timing or RNG draws).
    spans: Vec<((u16, u16), DeviceSpan)>,
    /// Whether per-command [`DeviceSpan`]s are being collected.
    probing: bool,
    /// Installed completion-loss injection (absent ⇒ bit-for-bit nominal).
    faults: Option<CtrlFaultState>,
    /// Pooled scratch for one doorbell's fetched commands — the SQ is
    /// drained into this, executed as one device slice, then
    /// post-processed; reused so steady state allocates nothing.
    cmd_scratch: Vec<NvmeCommand>,
    /// Pooled scratch: the device-facing view of `cmd_scratch`.
    dev_scratch: Vec<SsdCommand>,
    /// Pooled scratch: the batch's completions, index-parallel.
    comp_scratch: Vec<DeviceCompletion>,
    /// Pooled scratch: the batch's spans (probing only), index-parallel.
    span_scratch: Vec<DeviceSpan>,
}

/// Completion-loss lottery: each executed command may have its completion
/// silently dropped (never posted to the CQ), forcing the host down its
/// timeout → abort → retry → controller-reset path.
#[derive(Debug)]
struct CtrlFaultState {
    rng: SplitMix64,
    timeout_prob: f64,
    injected_timeouts: u64,
    /// Cids whose completion was dropped, per doorbell, drained by the
    /// host's recovery path via [`NvmeController::take_dropped`].
    dropped: Vec<(u16, u16)>,
}

impl NvmeController {
    /// Default MSI delivery latency.
    pub const DEFAULT_MSI_LATENCY: SimDuration = SimDuration::from_nanos(300);

    /// Creates a controller over `ssd` with `queues` I/O queue pairs of
    /// `qsize` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero.
    pub fn new(ssd: Ssd, queues: u16, qsize: u16) -> Self {
        assert!(queues > 0, "need at least one I/O queue pair");
        NvmeController {
            ssd,
            qpairs: (0..queues).map(|_| QueuePair::new(qsize)).collect(),
            msi_latency: Self::DEFAULT_MSI_LATENCY,
            details: Vec::new(),
            spans: Vec::new(),
            probing: false,
            faults: None,
            cmd_scratch: Vec::new(),
            dev_scratch: Vec::new(),
            comp_scratch: Vec::new(),
            span_scratch: Vec::new(),
        }
    }

    /// Enables or disables per-command [`DeviceSpan`] collection. Spans
    /// are observation only: toggling this never changes device timing.
    pub fn set_probing(&mut self, on: bool) {
        self.probing = on;
        if !on {
            self.spans.clear();
        }
    }

    /// Whether per-command spans are being collected.
    pub fn probing(&self) -> bool {
        self.probing
    }

    /// Installs a fault plan on the controller *and* its backing SSD.
    /// With `nvme_timeout_prob == 0` no controller fault state is kept;
    /// with every probability zero the whole device stack behaves
    /// bit-for-bit as if no plan were installed.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.ssd.set_fault_plan(plan);
        if plan.nvme_timeout_prob > 0.0 {
            self.faults = Some(CtrlFaultState {
                rng: plan.stream(SALT_NVME),
                timeout_prob: plan.nvme_timeout_prob,
                injected_timeouts: 0,
                dropped: Vec::new(),
            });
        } else {
            self.faults = None;
        }
    }

    /// Completions the controller has dropped so far (injected timeouts).
    pub fn injected_timeouts(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.injected_timeouts)
    }

    /// Drains the cids whose completions were dropped on `qid` since the
    /// last call, in execution order. The host's timeout/abort recovery
    /// consumes this after every doorbell.
    pub fn take_dropped(&mut self, qid: u16) -> Vec<u16> {
        let Some(f) = &mut self.faults else {
            return Vec::new();
        };
        let mut out = Vec::new();
        f.dropped.retain(|&(q, cid)| {
            if q == qid {
                out.push(cid);
                false
            } else {
                true
            }
        });
        out
    }

    /// Number of I/O queue pairs.
    pub fn queues(&self) -> u16 {
        self.qpairs.len() as u16
    }

    /// Creates an additional I/O queue pair (the admin Create I/O CQ/SQ
    /// flow), returning its qid.
    pub fn create_queue_pair(&mut self, size: u16) -> u16 {
        self.qpairs.push(QueuePair::new(size));
        self.qpairs.len() as u16 - 1
    }

    /// Answers Identify Controller (admin CNS 01h) for this device.
    pub fn identify_controller(&self) -> crate::admin::IdentifyController {
        crate::admin::IdentifyController {
            vid: 0x144D,
            serial: "ULLSIM0001".into(),
            model: self.ssd.config().name.chars().take(40).collect(),
            firmware: "8EV101H0".into(),
            mdts: 5, // 128 KB with 4 KB pages
            nn: 1,
        }
    }

    /// Answers Identify Namespace (admin CNS 00h) for namespace 1.
    pub fn identify_namespace(&self) -> crate::admin::IdentifyNamespace {
        crate::admin::IdentifyNamespace::for_capacity(self.ssd.capacity_bytes())
    }

    /// Shared access to the backing device (metrics, power).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Mutable access to the backing device (preconditioning).
    pub fn ssd_mut(&mut self) -> &mut Ssd {
        &mut self.ssd
    }

    /// Host side: place a command in the submission ring. The matching
    /// doorbell write is [`NvmeController::ring_sq_doorbell`].
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the submission ring is full.
    ///
    /// # Panics
    ///
    /// Panics if `qid` is out of range.
    pub fn submit(&mut self, qid: u16, cmd: NvmeCommand) -> Result<(), QueueFull> {
        self.qpairs[qid as usize].sq.push(cmd)
    }

    /// Host rings the SQ tail doorbell at `at`: the controller fetches every
    /// queued submission and starts it on the backend.
    pub fn ring_sq_doorbell(&mut self, qid: u16, at: SimTime) {
        self.ring(qid, at, false);
    }

    /// Like [`NvmeController::ring_sq_doorbell`] but exempt from the
    /// completion-loss lottery. Used for the host's post-reset requeue so
    /// recovery always terminates (a deterministic lottery could otherwise
    /// re-drop the same command forever).
    pub fn ring_sq_doorbell_requeue(&mut self, qid: u16, at: SimTime) {
        self.ring(qid, at, true);
    }

    /// Inserts `value` under `key`, replacing any existing entry —
    /// the map-insert semantics a retried cid relies on.
    fn put<V>(set: &mut Vec<((u16, u16), V)>, key: (u16, u16), value: V) {
        match set.iter_mut().find(|(k, _)| *k == key) {
            Some(e) => e.1 = value,
            None => set.push((key, value)),
        }
    }

    /// Fetches every queued submission on `qid` as one slice, executes
    /// the whole slice on the backend with a single [`Ssd::execute_batch`]
    /// call, then post-processes the completions in fetch order.
    ///
    /// Byte-identical to the historical fetch-execute-one-at-a-time loop:
    /// the device executes commands in the same order (its RNG stream and
    /// timelines advance identically), and the controller-side fault
    /// lottery draws from its own independent RNG stream in the same
    /// command order, so moving the draws after the device slice changes
    /// only the interleaving *between* the two streams — unobservable.
    fn ring(&mut self, qid: u16, at: SimTime, exempt: bool) {
        // Singleton fast path: a one-command doorbell (the closed loop's
        // common case — every submit rings immediately) skips the slice
        // staging entirely. `execute_batch` over one command is the same
        // per-command sequence, so the two paths are byte-equivalent —
        // the batch==singleton differential tests pin that.
        if self.qpairs[qid as usize].sq.len() == 1 {
            if let Some(cmd) = self.qpairs[qid as usize].sq.pop() {
                self.execute_one(qid, at, exempt, &cmd);
            }
            return;
        }
        let mut cmds = core::mem::take(&mut self.cmd_scratch);
        let mut devs = core::mem::take(&mut self.dev_scratch);
        let mut comps = core::mem::take(&mut self.comp_scratch);
        let mut spans = core::mem::take(&mut self.span_scratch);
        while let Some(cmd) = self.qpairs[qid as usize].sq.pop() {
            devs.push(match cmd.opcode {
                Opcode::Read => SsdCommand::Read {
                    offset: cmd.offset(),
                    len: cmd.bytes(),
                },
                Opcode::Write => SsdCommand::Write {
                    offset: cmd.offset(),
                    len: cmd.bytes(),
                },
                Opcode::Flush => SsdCommand::Flush,
            });
            cmds.push(cmd);
        }
        self.ssd
            .execute_batch(at, &devs, &mut comps, self.probing.then_some(&mut spans));
        for (i, cmd) in cmds.iter().enumerate() {
            let span = self.probing.then(|| spans[i]);
            self.finish_command(qid, exempt, cmd.cid, comps[i], span);
        }
        cmds.clear();
        devs.clear();
        comps.clear();
        spans.clear();
        self.cmd_scratch = cmds;
        self.dev_scratch = devs;
        self.comp_scratch = comps;
        self.span_scratch = spans;
    }

    /// Executes one fetched command on the backend and post-processes
    /// it — the historical one-at-a-time ring body, kept as the
    /// singleton fast path of [`ring`](Self::ring).
    fn execute_one(&mut self, qid: u16, at: SimTime, exempt: bool, cmd: &NvmeCommand) {
        let completion = match cmd.opcode {
            Opcode::Read => self.ssd.read(at, cmd.offset(), cmd.bytes()),
            Opcode::Write => self.ssd.write(at, cmd.offset(), cmd.bytes()),
            Opcode::Flush => {
                let done = self.ssd.flush(at);
                DeviceCompletion {
                    done,
                    dram_hit: false,
                    suspended: false,
                    gc_stalled: false,
                }
            }
        };
        let span = self.probing.then(|| match cmd.opcode {
            // The SSD computed the exact decomposition while executing
            // the command just above.
            Opcode::Read | Opcode::Write => self.ssd.last_span(),
            Opcode::Flush => {
                // Flush has no per-die critical path; charge the whole
                // wait to the program-drain bucket.
                let mut s = DeviceSpan::empty(at);
                s.done = completion.done;
                s.write_drain = completion.done.saturating_since(at);
                s
            }
        });
        self.finish_command(qid, exempt, cmd.cid, completion, span);
    }

    /// The shared post-execution tail of both ring paths: records the
    /// command's detail (and span, when probing), runs the
    /// completion-loss lottery, and schedules the surviving completion.
    fn finish_command(
        &mut self,
        qid: u16,
        exempt: bool,
        cid: u16,
        completion: DeviceCompletion,
        span: Option<DeviceSpan>,
    ) {
        Self::put(&mut self.details, (qid, cid), completion);
        if let Some(span) = span {
            Self::put(&mut self.spans, (qid, cid), span);
        }
        // Completion-loss injection: the command *executed* on the
        // backend, but its completion never surfaces — exactly how a
        // lost CQE / dead MSI looks to the host.
        let lost = match &mut self.faults {
            Some(f) if !exempt && f.timeout_prob > 0.0 => {
                let lost = f.rng.chance(f.timeout_prob);
                if lost {
                    f.injected_timeouts += 1;
                    f.dropped.push((qid, cid));
                }
                lost
            }
            _ => false,
        };
        if !lost {
            self.qpairs[qid as usize]
                .pending
                .schedule_keyed(completion.done, u64::from(cid), cid);
        }
    }

    /// Controller reset scoped to one queue pair (the recovery a host
    /// driver performs after aborts fail): discards the SQ, zeroes the CQ
    /// and its phase tags, and forgets every undelivered completion.
    ///
    /// Returns the cids whose completions were lost by the reset, in
    /// completion-time order — the host must requeue these (its in-flight
    /// replay set). Their device details are forgotten too, so the replay
    /// produces fresh ones.
    pub fn reset_queue(&mut self, qid: u16) -> Vec<u16> {
        let qp = &mut self.qpairs[qid as usize];
        let mut lost = Vec::new();
        while let Some((_, cid)) = qp.pending.pop() {
            lost.push(cid);
        }
        qp.sq.reset();
        qp.cq.reset();
        for &cid in &lost {
            self.take_detail(qid, cid);
            self.take_span(qid, cid);
        }
        if let Some(f) = &mut self.faults {
            f.dropped.retain(|&(q, _)| q != qid);
        }
        lost
    }

    /// Earliest instant at which a pending completion becomes visible on
    /// this queue (before MSI latency).
    pub fn next_completion_at(&self, qid: u16) -> Option<SimTime> {
        self.qpairs[qid as usize].pending.earliest()
    }

    /// Earliest instant the host IRQ for this queue would fire.
    pub fn next_interrupt_at(&self, qid: u16) -> Option<SimTime> {
        self.next_completion_at(qid).map(|t| t + self.msi_latency)
    }

    /// Materializes into the CQ every pending completion due by `at`.
    /// Completions that do not fit (host lagging) stay pending.
    pub fn deliver_due(&mut self, qid: u16, at: SimTime) {
        let qp = &mut self.qpairs[qid as usize];
        let mut pump = CqPump {
            cq: &mut qp.cq,
            sqhd: qp.sq.head(),
        };
        qp.pending.run_until(at, &mut pump);
    }

    /// Host-side poll at instant `at`: delivers due completions and consumes
    /// the head CQ entry if one is visible. This is the ring work inside
    /// `nvme_poll()` / `spdk_nvme_qpair_process_completions()`.
    pub fn poll(&mut self, qid: u16, at: SimTime) -> Option<Completion> {
        self.deliver_due(qid, at);
        let qp = &mut self.qpairs[qid as usize];
        let c = qp.cq.peek()?;
        qp.cq.advance();
        Some(c)
    }

    /// Retrieves (once) the device-level detail of a completed command.
    pub fn take_detail(&mut self, qid: u16, cid: u16) -> Option<DeviceCompletion> {
        let i = self.details.iter().position(|(k, _)| *k == (qid, cid))?;
        Some(self.details.swap_remove(i).1)
    }

    /// Retrieves (once) the device-internal span of a completed command.
    /// Returns `None` unless probing was enabled when the command ran.
    pub fn take_span(&mut self, qid: u16, cid: u16) -> Option<DeviceSpan> {
        let i = self.spans.iter().position(|(k, _)| *k == (qid, cid))?;
        Some(self.spans.swap_remove(i).1)
    }

    /// Commands started on the backend but not yet consumed by the host.
    pub fn in_flight(&self, qid: u16) -> usize {
        let qp = &self.qpairs[qid as usize];
        qp.pending.len() + qp.cq.backlog() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ull_ssd::presets;

    fn controller() -> NvmeController {
        NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 2, 8)
    }

    #[test]
    fn command_flows_submit_doorbell_poll() {
        let mut c = controller();
        c.submit(0, NvmeCommand::read(5, 4096, 4096)).unwrap();
        c.ring_sq_doorbell(0, SimTime::ZERO);
        assert_eq!(c.in_flight(0), 1);
        // Too early: nothing visible.
        assert!(c.poll(0, SimTime::from_nanos(1)).is_none());
        let done = c.next_completion_at(0).unwrap();
        let comp = c.poll(0, done).unwrap();
        assert_eq!(comp.cid, 5);
        assert!(comp.success);
        assert_eq!(c.in_flight(0), 0);
        let detail = c.take_detail(0, 5).unwrap();
        assert_eq!(detail.done, done);
        assert!(c.take_detail(0, 5).is_none(), "detail is taken once");
    }

    #[test]
    fn completions_surface_in_time_order() {
        let mut c = controller();
        // A large read (slow) then a flush (fast, no PCIe payload): the
        // flush completes first even though submitted second.
        c.submit(0, NvmeCommand::read(1, 0, 128 * 1024)).unwrap();
        c.submit(0, NvmeCommand::flush(2)).unwrap();
        c.ring_sq_doorbell(0, SimTime::ZERO);
        let first = c
            .poll(0, SimTime::ZERO + ull_simkit::SimDuration::from_millis(10))
            .unwrap();
        let second = c
            .poll(0, SimTime::ZERO + ull_simkit::SimDuration::from_millis(10))
            .unwrap();
        assert_eq!(first.cid, 2);
        assert_eq!(second.cid, 1);
        let flush_done = c.take_detail(0, 2).unwrap().done;
        let read_done = c.take_detail(0, 1).unwrap().done;
        assert!(flush_done < read_done);
    }

    #[test]
    fn interrupt_time_adds_msi_latency() {
        let mut c = controller();
        c.submit(1, NvmeCommand::write(9, 0, 4096)).unwrap();
        c.ring_sq_doorbell(1, SimTime::ZERO);
        let done = c.next_completion_at(1).unwrap();
        let irq = c.next_interrupt_at(1).unwrap();
        assert_eq!(irq - done, NvmeController::DEFAULT_MSI_LATENCY);
    }

    #[test]
    fn queues_are_independent() {
        let mut c = controller();
        c.submit(0, NvmeCommand::read(1, 0, 4096)).unwrap();
        c.ring_sq_doorbell(0, SimTime::ZERO);
        assert_eq!(c.in_flight(0), 1);
        assert_eq!(c.in_flight(1), 0);
        assert!(c.next_completion_at(1).is_none());
    }

    #[test]
    fn lost_completions_are_reported_not_posted() {
        let mut c = controller();
        c.set_fault_plan(&ull_faults::FaultPlan::uniform(3, 1.0)); // drop everything
        c.submit(0, NvmeCommand::read(1, 0, 4096)).unwrap();
        c.ring_sq_doorbell(0, SimTime::ZERO);
        assert_eq!(c.injected_timeouts(), 1);
        assert_eq!(c.take_dropped(0), vec![1]);
        assert!(c.take_dropped(0).is_empty(), "dropped set drains once");
        // The command executed (detail exists) but no completion surfaces.
        let late = SimTime::ZERO + ull_simkit::SimDuration::from_millis(100);
        assert!(c.poll(0, late).is_none());
        assert!(c.take_detail(0, 1).is_some());
        // The requeue doorbell is injection-exempt: the retry completes.
        c.submit(0, NvmeCommand::read(2, 0, 4096)).unwrap();
        c.ring_sq_doorbell_requeue(0, SimTime::ZERO);
        assert_eq!(c.injected_timeouts(), 1);
        assert_eq!(c.poll(0, late).unwrap().cid, 2);
    }

    #[test]
    fn reset_queue_returns_inflight_for_replay() {
        let mut c = controller();
        c.submit(0, NvmeCommand::read(1, 0, 4096)).unwrap();
        c.submit(0, NvmeCommand::read(2, 4096, 4096)).unwrap();
        c.ring_sq_doorbell(0, SimTime::ZERO);
        assert_eq!(c.in_flight(0), 2);
        let lost = c.reset_queue(0);
        assert_eq!(lost.len(), 2);
        assert_eq!(c.in_flight(0), 0);
        let late = SimTime::ZERO + ull_simkit::SimDuration::from_millis(100);
        assert!(c.poll(0, late).is_none(), "reset forgets completions");
        for cid in lost {
            assert!(c.take_detail(0, cid).is_none(), "details forgotten");
        }
        // The queue pair works again after the reset.
        c.submit(0, NvmeCommand::read(7, 0, 4096)).unwrap();
        c.ring_sq_doorbell(0, late);
        let done = c.next_completion_at(0).unwrap();
        assert_eq!(c.poll(0, done).unwrap().cid, 7);
    }

    #[test]
    fn zero_rate_fault_plan_leaves_controller_nominal() {
        let run = |plan: bool| {
            let mut c = controller();
            if plan {
                c.set_fault_plan(&ull_faults::FaultPlan::uniform(3, 0.0));
            }
            let mut dones = Vec::new();
            for cid in 0..20u16 {
                c.submit(0, NvmeCommand::read(cid, u64::from(cid) * 4096, 4096))
                    .unwrap();
                c.ring_sq_doorbell(0, SimTime::ZERO);
                let done = c.next_completion_at(0).unwrap();
                assert_eq!(c.poll(0, done).unwrap().cid, cid);
                dones.push(done);
            }
            dones
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn spans_are_collected_only_while_probing() {
        let mut c = controller();
        // Probing off: no span is kept.
        c.submit(0, NvmeCommand::read(1, 0, 4096)).unwrap();
        c.ring_sq_doorbell(0, SimTime::ZERO);
        assert!(c.take_span(0, 1).is_none());
        // Probing on: read, write, and flush spans all tile exactly.
        c.set_probing(true);
        assert!(c.probing());
        let t = SimTime::from_micros(500);
        c.submit(0, NvmeCommand::read(2, 0, 4096)).unwrap();
        c.submit(0, NvmeCommand::write(3, 8192, 4096)).unwrap();
        c.submit(0, NvmeCommand::flush(4)).unwrap();
        c.ring_sq_doorbell(0, t);
        for cid in 2..=4u16 {
            let span = c.take_span(0, cid).unwrap();
            let detail = c.take_detail(0, cid).unwrap();
            assert_eq!(span.arrive, t);
            assert_eq!(span.done, detail.done);
            assert!(span.is_exact(), "cid {cid} span not exact: {span:?}");
            assert!(c.take_span(0, cid).is_none(), "span is taken once");
        }
        // Disabling probing clears any residue.
        c.submit(0, NvmeCommand::read(5, 0, 4096)).unwrap();
        c.ring_sq_doorbell(0, t);
        c.set_probing(false);
        assert!(c.take_span(0, 5).is_none());
    }

    #[test]
    fn reset_queue_forgets_spans_of_lost_commands() {
        let mut c = controller();
        c.set_probing(true);
        c.submit(0, NvmeCommand::read(1, 0, 4096)).unwrap();
        c.ring_sq_doorbell(0, SimTime::ZERO);
        let lost = c.reset_queue(0);
        assert_eq!(lost, vec![1]);
        assert!(c.take_span(0, 1).is_none(), "reset forgets spans");
    }

    #[test]
    fn cq_backpressure_retries_delivery() {
        let mut c = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 4);
        for cid in 0..3 {
            c.submit(0, NvmeCommand::read(cid, cid as u64 * 4096, 4096))
                .unwrap();
        }
        c.ring_sq_doorbell(0, SimTime::ZERO);
        let late = SimTime::ZERO + ull_simkit::SimDuration::from_millis(100);
        // Consume one at a time; every completion must eventually surface.
        for _ in 0..3 {
            assert!(c.poll(0, late).is_some());
        }
        assert!(c.poll(0, late).is_none());
        assert_eq!(c.in_flight(0), 0);
    }
}

#[cfg(test)]
mod admin_tests {
    use super::*;
    use ull_ssd::presets;

    #[test]
    fn identify_describes_the_device() {
        let c = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 8);
        let id = c.identify_controller();
        assert!(id.model.contains("Z-SSD"));
        assert_eq!(id.max_transfer_bytes(), Some(128 << 10));
        let ns = c.identify_namespace();
        assert_eq!(ns.bytes(), presets::ull_800g().capacity_bytes);
    }

    #[test]
    fn queue_pairs_can_be_created_dynamically() {
        let mut c = NvmeController::new(Ssd::new(presets::ull_800g()).unwrap(), 1, 8);
        assert_eq!(c.queues(), 1);
        let qid = c.create_queue_pair(16);
        assert_eq!(qid, 1);
        assert_eq!(c.queues(), 2);
        c.submit(qid, NvmeCommand::read(3, 0, 4096)).unwrap();
        c.ring_sq_doorbell(qid, SimTime::ZERO);
        let done = c.next_completion_at(qid).unwrap();
        assert_eq!(c.poll(qid, done).unwrap().cid, 3);
    }
}
