//! Admin command structures: Identify Controller / Identify Namespace.
//!
//! The study's host paths discover the device the way a real driver does —
//! by parsing wire-format Identify pages. Offsets follow the NVMe 1.3
//! specification for the fields this project consumes (serial/model
//! strings, MDTS, namespace count, namespace size/capacity, LBA format).

use crate::command::LBA_BYTES;
use crate::wire::{le_u32, le_u64};

/// Identify Controller data (CNS 01h), 4096 bytes on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyController {
    /// PCI vendor id.
    pub vid: u16,
    /// Serial number (<= 20 ASCII chars).
    pub serial: String,
    /// Model number (<= 40 ASCII chars).
    pub model: String,
    /// Firmware revision (<= 8 ASCII chars).
    pub firmware: String,
    /// Maximum data transfer size as a power of two of the minimum page
    /// size (0 = unlimited). MDTS=5 with 4 KB pages = 128 KB.
    pub mdts: u8,
    /// Number of namespaces.
    pub nn: u32,
}

fn put_ascii(buf: &mut [u8], s: &str) {
    // Space-padded ASCII per spec.
    for b in buf.iter_mut() {
        *b = b' ';
    }
    for (dst, src) in buf.iter_mut().zip(s.bytes()) {
        *dst = src;
    }
}

fn get_ascii(buf: &[u8]) -> String {
    String::from_utf8_lossy(buf).trim_end().to_string()
}

impl IdentifyController {
    /// Encodes the 4096-byte Identify Controller page.
    pub fn encode(&self) -> Box<[u8; 4096]> {
        let mut p = Box::new([0u8; 4096]);
        p[0..2].copy_from_slice(&self.vid.to_le_bytes());
        put_ascii(&mut p[4..24], &self.serial);
        put_ascii(&mut p[24..64], &self.model);
        put_ascii(&mut p[64..72], &self.firmware);
        p[77] = self.mdts;
        p[516..520].copy_from_slice(&self.nn.to_le_bytes());
        p
    }

    /// Decodes an Identify Controller page.
    pub fn decode(p: &[u8; 4096]) -> Self {
        IdentifyController {
            vid: u16::from_le_bytes([p[0], p[1]]),
            serial: get_ascii(&p[4..24]),
            model: get_ascii(&p[24..64]),
            firmware: get_ascii(&p[64..72]),
            mdts: p[77],
            nn: le_u32(&p[516..520]),
        }
    }

    /// Maximum transfer size in bytes implied by MDTS (with 4 KB minimum
    /// pages), or `None` when unlimited.
    pub fn max_transfer_bytes(&self) -> Option<u32> {
        (self.mdts != 0).then(|| 4096u32 << self.mdts)
    }
}

/// Identify Namespace data (CNS 00h), 4096 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentifyNamespace {
    /// Namespace size in logical blocks.
    pub nsze: u64,
    /// Namespace capacity in logical blocks.
    pub ncap: u64,
    /// LBA data size as a power of two (9 = 512-byte LBAs).
    pub lbads: u8,
}

impl IdentifyNamespace {
    /// Builds the namespace page for a device of `capacity_bytes`.
    pub fn for_capacity(capacity_bytes: u64) -> Self {
        let blocks = capacity_bytes / LBA_BYTES as u64;
        IdentifyNamespace {
            nsze: blocks,
            ncap: blocks,
            lbads: LBA_BYTES.trailing_zeros() as u8,
        }
    }

    /// Encodes the 4096-byte Identify Namespace page.
    pub fn encode(&self) -> Box<[u8; 4096]> {
        let mut p = Box::new([0u8; 4096]);
        p[0..8].copy_from_slice(&self.nsze.to_le_bytes());
        p[8..16].copy_from_slice(&self.ncap.to_le_bytes());
        // NLBAF=0 (one format), FLBAS=0; LBA format 0 descriptor at 128.
        p[130] = self.lbads; // LBADS within LBAF0 (dword: MS=0, LBADS byte 2)
        p
    }

    /// Decodes an Identify Namespace page.
    pub fn decode(p: &[u8; 4096]) -> Self {
        IdentifyNamespace {
            nsze: le_u64(&p[0..8]),
            ncap: le_u64(&p[8..16]),
            lbads: p[130],
        }
    }

    /// Namespace size in bytes.
    pub fn bytes(&self) -> u64 {
        self.nsze << self.lbads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identify_controller_round_trips() {
        let id = IdentifyController {
            vid: 0x144D,
            serial: "S3U8NX0K".into(),
            model: "Z-SSD SZ985 prototype".into(),
            firmware: "8EV101H0".into(),
            mdts: 5,
            nn: 1,
        };
        let decoded = IdentifyController::decode(&id.encode());
        assert_eq!(decoded, id);
        assert_eq!(decoded.max_transfer_bytes(), Some(128 << 10));
    }

    #[test]
    fn unlimited_mdts() {
        let id = IdentifyController {
            vid: 0,
            serial: String::new(),
            model: String::new(),
            firmware: String::new(),
            mdts: 0,
            nn: 1,
        };
        assert_eq!(id.max_transfer_bytes(), None);
    }

    #[test]
    fn identify_namespace_round_trips() {
        let ns = IdentifyNamespace::for_capacity(2 << 30);
        assert_eq!(ns.bytes(), 2 << 30);
        assert_eq!(ns.lbads, 9);
        let decoded = IdentifyNamespace::decode(&ns.encode());
        assert_eq!(decoded, ns);
    }

    #[test]
    fn strings_are_space_padded_ascii() {
        let id = IdentifyController {
            vid: 1,
            serial: "AB".into(),
            model: "M".into(),
            firmware: "F".into(),
            mdts: 0,
            nn: 1,
        };
        let page = id.encode();
        assert_eq!(&page[4..8], b"AB  ");
        assert_eq!(IdentifyController::decode(&page).serial, "AB");
    }
}
