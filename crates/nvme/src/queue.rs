//! Submission/completion rings with doorbells and phase tags (§II-B2).
//!
//! These are faithful ring-buffer implementations: the host advances the SQ
//! tail and rings a doorbell; the controller consumes entries and advances
//! the SQ head; completions are written into the CQ with the controller's
//! current *phase tag*, which inverts every time the CQ wraps, so the host
//! can detect new entries without a head/tail exchange — exactly the state
//! `nvme_poll()` spins on.

use crate::command::{Completion, NvmeCommand};

/// A submission queue ring.
///
/// # Examples
///
/// ```
/// use ull_nvme::{NvmeCommand, SubmissionQueue};
///
/// let mut sq = SubmissionQueue::new(4);
/// sq.push(NvmeCommand::read(0, 0, 512)).unwrap();
/// assert_eq!(sq.len(), 1);
/// let cmd = sq.pop().unwrap();
/// assert_eq!(cmd.cid, 0);
/// ```
#[derive(Debug, Clone)]
pub struct SubmissionQueue {
    entries: Vec<[u8; 64]>,
    head: u16,
    tail: u16,
    size: u16,
}

/// Error pushing to a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl core::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "nvme queue is full")
    }
}

impl std::error::Error for QueueFull {}

impl SubmissionQueue {
    /// Creates a ring with `size` slots (one is sacrificed to distinguish
    /// full from empty, per the spec).
    ///
    /// # Panics
    ///
    /// Panics if `size < 2`.
    pub fn new(size: u16) -> Self {
        assert!(size >= 2, "an NVMe queue needs at least 2 slots");
        SubmissionQueue {
            entries: vec![[0; 64]; size as usize],
            head: 0,
            tail: 0,
            size,
        }
    }

    /// Slots in the ring.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Entries currently queued.
    pub fn len(&self) -> u16 {
        (self.tail + self.size - self.head) % self.size
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// True when one more push would be rejected.
    pub fn is_full(&self) -> bool {
        (self.tail + 1) % self.size == self.head
    }

    /// Host side: enqueue a command at the tail (the doorbell write is the
    /// caller's responsibility — cost-modelled in `ull-stack`).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the ring cannot accept another entry.
    pub fn push(&mut self, cmd: NvmeCommand) -> Result<(), QueueFull> {
        if self.is_full() {
            return Err(QueueFull);
        }
        self.entries[self.tail as usize] = cmd.encode();
        self.tail = (self.tail + 1) % self.size;
        Ok(())
    }

    /// Controller side: consume the entry at the head.
    ///
    /// The slot is consumed either way; `push` only writes encodable
    /// entries, so decode cannot fail in practice and a (theoretical)
    /// undecodable slot is skipped rather than panicking.
    pub fn pop(&mut self) -> Option<NvmeCommand> {
        if self.is_empty() {
            return None;
        }
        let raw = self.entries[self.head as usize];
        self.head = (self.head + 1) % self.size;
        NvmeCommand::decode(&raw).ok()
    }

    /// Current head index (reported back in completions as `sqhd`).
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Controller reset: discards queued entries and returns the ring to
    /// its initial (empty) state, as a Controller Reset (CC.EN toggle)
    /// does to every I/O queue.
    pub fn reset(&mut self) {
        self.head = 0;
        self.tail = 0;
    }
}

/// A completion queue ring with phase-tag detection.
///
/// # Examples
///
/// ```
/// use ull_nvme::{Completion, CompletionQueue};
///
/// let mut cq = CompletionQueue::new(4);
/// // Controller posts; host sees it via the phase tag without a doorbell.
/// cq.post(7, 0, true).unwrap();
/// let c = cq.peek().expect("entry visible");
/// assert_eq!(c.cid, 7);
/// cq.advance();
/// assert!(cq.peek().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    entries: Vec<[u8; 16]>,
    /// Host consumer index.
    head: u16,
    /// Controller producer index.
    tail: u16,
    size: u16,
    /// Phase the controller writes on the current lap.
    producer_phase: bool,
    /// Phase the host expects for a fresh entry at `head`.
    consumer_phase: bool,
}

impl CompletionQueue {
    /// Creates a ring with `size` slots.
    ///
    /// # Panics
    ///
    /// Panics if `size < 2`.
    pub fn new(size: u16) -> Self {
        // Entries start zeroed: phase bit 0, which differs from the
        // producer's initial phase of 1, so nothing looks complete.
        assert!(size >= 2, "an NVMe queue needs at least 2 slots");
        CompletionQueue {
            entries: vec![[0; 16]; size as usize],
            head: 0,
            tail: 0,
            size,
            producer_phase: true,
            consumer_phase: true,
        }
    }

    /// Slots in the ring.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Controller side: post a completion for `cid`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the host has not consumed enough entries.
    pub fn post(&mut self, cid: u16, sqhd: u16, success: bool) -> Result<(), QueueFull> {
        if (self.tail + 1) % self.size == self.head {
            return Err(QueueFull);
        }
        let c = Completion {
            cid,
            sqhd,
            success,
            phase: self.producer_phase,
        };
        self.entries[self.tail as usize] = c.encode();
        self.tail = (self.tail + 1) % self.size;
        if self.tail == 0 {
            self.producer_phase = !self.producer_phase;
        }
        Ok(())
    }

    /// Host side: inspect the entry at the head. Returns `Some` only when
    /// the entry's phase tag matches the consumer's expected phase — the
    /// exact check `nvme_poll()` performs on every iteration.
    pub fn peek(&self) -> Option<Completion> {
        let c = Completion::decode(&self.entries[self.head as usize]);
        (c.phase == self.consumer_phase).then_some(c)
    }

    /// Host side: consume the entry at the head after a successful peek.
    /// (The CQ head doorbell write is cost-modelled in `ull-stack`.)
    ///
    /// # Panics
    ///
    /// Panics in debug builds if no visible entry exists.
    pub fn advance(&mut self) {
        debug_assert!(
            self.peek().is_some(),
            "advancing past an unposted completion"
        );
        self.head = (self.head + 1) % self.size;
        if self.head == 0 {
            self.consumer_phase = !self.consumer_phase;
        }
    }

    /// Completions posted but not yet consumed.
    pub fn backlog(&self) -> u16 {
        (self.tail + self.size - self.head) % self.size
    }

    /// Controller reset: zeroes the ring and restores the initial phase
    /// tags, so no stale entry can look complete afterwards.
    pub fn reset(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = [0; 16]);
        self.head = 0;
        self.tail = 0;
        self.producer_phase = true;
        self.consumer_phase = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_fifo_order_and_capacity() {
        let mut sq = SubmissionQueue::new(4);
        for cid in 0..3 {
            sq.push(NvmeCommand::read(cid, 0, 512)).unwrap();
        }
        assert!(sq.is_full());
        assert_eq!(sq.push(NvmeCommand::read(9, 0, 512)), Err(QueueFull));
        for cid in 0..3 {
            assert_eq!(sq.pop().unwrap().cid, cid);
        }
        assert!(sq.is_empty());
        assert_eq!(sq.pop(), None);
    }

    #[test]
    fn sq_wraps_cleanly() {
        let mut sq = SubmissionQueue::new(3);
        for round in 0..50u16 {
            sq.push(NvmeCommand::read(round, 0, 512)).unwrap();
            sq.push(NvmeCommand::read(round + 1000, 0, 512)).unwrap();
            assert_eq!(sq.pop().unwrap().cid, round);
            assert_eq!(sq.pop().unwrap().cid, round + 1000);
        }
    }

    #[test]
    fn cq_phase_hides_stale_entries() {
        let mut cq = CompletionQueue::new(3);
        assert!(cq.peek().is_none(), "zeroed ring must not look complete");
        cq.post(1, 0, true).unwrap();
        assert_eq!(cq.peek().unwrap().cid, 1);
        cq.advance();
        // The consumed slot still holds bytes, but peek at the next slot
        // must see nothing.
        assert!(cq.peek().is_none());
    }

    #[test]
    fn cq_phase_flips_across_wraps() {
        let mut cq = CompletionQueue::new(3);
        // Drive many laps; at every step peek/advance must track posts 1:1.
        for i in 0..100u16 {
            cq.post(i, 0, true).unwrap();
            let seen = cq.peek().expect("posted entry visible");
            assert_eq!(seen.cid, i);
            cq.advance();
            assert!(cq.peek().is_none(), "no double delivery at i={i}");
        }
    }

    #[test]
    fn resets_restore_initial_state() {
        let mut sq = SubmissionQueue::new(4);
        sq.push(NvmeCommand::read(1, 0, 512)).unwrap();
        sq.push(NvmeCommand::read(2, 0, 512)).unwrap();
        sq.reset();
        assert!(sq.is_empty());
        assert_eq!(sq.pop(), None);
        sq.push(NvmeCommand::read(3, 0, 512)).unwrap();
        assert_eq!(sq.pop().unwrap().cid, 3);

        let mut cq = CompletionQueue::new(4);
        cq.post(1, 0, true).unwrap();
        cq.post(2, 0, true).unwrap();
        cq.advance(); // leave the ring mid-lap
        cq.reset();
        assert!(cq.peek().is_none(), "no stale entry may look complete");
        assert_eq!(cq.backlog(), 0);
        cq.post(9, 0, true).unwrap();
        assert_eq!(cq.peek().unwrap().cid, 9);
    }

    #[test]
    fn cq_backpressure() {
        let mut cq = CompletionQueue::new(3);
        cq.post(0, 0, true).unwrap();
        cq.post(1, 0, true).unwrap();
        assert_eq!(cq.post(2, 0, true), Err(QueueFull));
        assert_eq!(cq.backlog(), 2);
    }
}
