//! Panic-free little-endian field extraction for on-wire structures.
//!
//! NVMe pages and queue entries are fixed-size byte arrays; decoding their
//! fields with `slice.try_into().expect(..)` is infallible in practice but
//! introduces a panicking path into library code (simlint rule S006).
//! These helpers copy at most the needed bytes and zero-fill any shortfall,
//! so no input can panic; short input (impossible for the fixed-size pages
//! used here) decodes as if zero-padded.

/// Reads a little-endian `u32` from the first 4 bytes of `p`.
pub(crate) fn le_u32(p: &[u8]) -> u32 {
    let mut b = [0u8; 4];
    for (d, s) in b.iter_mut().zip(p) {
        *d = *s;
    }
    u32::from_le_bytes(b)
}

/// Reads a little-endian `u64` from the first 8 bytes of `p`.
pub(crate) fn le_u64(p: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    for (d, s) in b.iter_mut().zip(p) {
        *d = *s;
    }
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_width_round_trips() {
        assert_eq!(le_u32(&0xDEAD_BEEFu32.to_le_bytes()), 0xDEAD_BEEF);
        assert_eq!(
            le_u64(&0x0123_4567_89AB_CDEFu64.to_le_bytes()),
            0x0123_4567_89AB_CDEF
        );
    }

    #[test]
    fn short_input_zero_pads_instead_of_panicking() {
        assert_eq!(le_u32(&[0xFF]), 0xFF);
        assert_eq!(le_u64(&[]), 0);
    }

    #[test]
    fn long_input_ignores_tail() {
        assert_eq!(le_u32(&[1, 0, 0, 0, 0xAA, 0xBB]), 1);
    }
}
