//! NVMe command and completion entries, encoded at the wire level.
//!
//! Submission queue entries are 64 bytes and completion queue entries are
//! 16 bytes, laid out per the NVMe 1.3 specification (the subset this study
//! exercises: I/O read, write, flush). Byte-level encoding is deliberate —
//! ring wraparound, phase tags and entry reuse are where queueing bugs live,
//! and the property tests hammer exactly these paths.

/// I/O command opcodes (NVM command set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// NVM Flush (0x00).
    Flush = 0x00,
    /// NVM Write (0x01).
    Write = 0x01,
    /// NVM Read (0x02).
    Read = 0x02,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        match v {
            0x00 => Some(Opcode::Flush),
            0x01 => Some(Opcode::Write),
            0x02 => Some(Opcode::Read),
            _ => None,
        }
    }
}

/// Logical block size this study uses throughout (the devices are formatted
/// with 512-byte LBAs; FIO issues 4 KB+ requests on top).
pub const LBA_BYTES: u32 = 512;

/// A decoded I/O command.
///
/// # Examples
///
/// ```
/// use ull_nvme::{NvmeCommand, Opcode};
///
/// let cmd = NvmeCommand::read(7, 0x1000, 4096);
/// let sqe = cmd.encode();
/// assert_eq!(NvmeCommand::decode(&sqe).unwrap(), cmd);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeCommand {
    /// Command opcode.
    pub opcode: Opcode,
    /// Command identifier, unique among outstanding commands on a queue.
    pub cid: u16,
    /// Starting logical block address.
    pub slba: u64,
    /// Number of logical blocks, 0's-based as on the wire (0 means 1 LBA).
    pub nlb: u16,
}

impl NvmeCommand {
    /// Builds a read command covering `bytes` starting at byte offset
    /// `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset`/`bytes` are not LBA-aligned or `bytes` is zero.
    pub fn read(cid: u16, offset: u64, bytes: u32) -> Self {
        Self::io(Opcode::Read, cid, offset, bytes)
    }

    /// Builds a write command covering `bytes` starting at byte `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset`/`bytes` are not LBA-aligned or `bytes` is zero.
    pub fn write(cid: u16, offset: u64, bytes: u32) -> Self {
        Self::io(Opcode::Write, cid, offset, bytes)
    }

    /// Builds a flush command.
    pub fn flush(cid: u16) -> Self {
        NvmeCommand {
            opcode: Opcode::Flush,
            cid,
            slba: 0,
            nlb: 0,
        }
    }

    fn io(opcode: Opcode, cid: u16, offset: u64, bytes: u32) -> Self {
        assert!(bytes > 0, "zero-length I/O command");
        assert!(
            offset.is_multiple_of(LBA_BYTES as u64) && bytes.is_multiple_of(LBA_BYTES),
            "I/O must be LBA-aligned: offset={offset} bytes={bytes}"
        );
        let nlb = (bytes / LBA_BYTES - 1) as u16;
        NvmeCommand {
            opcode,
            cid,
            slba: offset / LBA_BYTES as u64,
            nlb,
        }
    }

    /// Byte offset this command addresses.
    pub fn offset(&self) -> u64 {
        self.slba * LBA_BYTES as u64
    }

    /// Transfer length in bytes.
    pub fn bytes(&self) -> u32 {
        (self.nlb as u32 + 1) * LBA_BYTES
    }

    /// Encodes into a 64-byte submission queue entry.
    pub fn encode(&self) -> [u8; 64] {
        let mut e = [0u8; 64];
        e[0] = self.opcode as u8;
        e[2..4].copy_from_slice(&self.cid.to_le_bytes());
        e[4..8].copy_from_slice(&1u32.to_le_bytes()); // NSID 1
        e[40..48].copy_from_slice(&self.slba.to_le_bytes());
        e[48..50].copy_from_slice(&self.nlb.to_le_bytes());
        e
    }

    /// Decodes a 64-byte submission queue entry.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on an unknown opcode.
    pub fn decode(e: &[u8; 64]) -> Result<Self, DecodeError> {
        let opcode = Opcode::from_u8(e[0]).ok_or(DecodeError { opcode: e[0] })?;
        Ok(NvmeCommand {
            opcode,
            cid: u16::from_le_bytes([e[2], e[3]]),
            slba: crate::wire::le_u64(&e[40..48]),
            nlb: u16::from_le_bytes([e[48], e[49]]),
        })
    }
}

/// Error decoding a submission entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The unrecognized opcode byte.
    pub opcode: u8,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown nvme opcode {:#04x}", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

/// A decoded 16-byte completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Command identifier being completed.
    pub cid: u16,
    /// Submission queue head pointer at completion time.
    pub sqhd: u16,
    /// Success flag (status code 0).
    pub success: bool,
    /// Phase tag: flips each time the CQ wraps.
    pub phase: bool,
}

impl Completion {
    /// Encodes into a 16-byte completion entry.
    pub fn encode(&self) -> [u8; 16] {
        let mut e = [0u8; 16];
        e[8..10].copy_from_slice(&self.sqhd.to_le_bytes());
        e[12..14].copy_from_slice(&self.cid.to_le_bytes());
        let status: u16 = if self.success { 0 } else { 1 << 1 };
        let sp = status | u16::from(self.phase);
        e[14..16].copy_from_slice(&sp.to_le_bytes());
        e
    }

    /// Decodes a 16-byte completion entry.
    pub fn decode(e: &[u8; 16]) -> Self {
        let sp = u16::from_le_bytes([e[14], e[15]]);
        Completion {
            cid: u16::from_le_bytes([e[12], e[13]]),
            sqhd: u16::from_le_bytes([e[8], e[9]]),
            success: (sp >> 1) == 0,
            phase: sp & 1 == 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_round_trips_through_wire_format() {
        for cmd in [
            NvmeCommand::read(1, 0, 512),
            NvmeCommand::write(0xFFFF, 0xDEAD_BE00 * 512, 1 << 20),
            NvmeCommand::flush(42),
        ] {
            assert_eq!(NvmeCommand::decode(&cmd.encode()).unwrap(), cmd);
        }
    }

    #[test]
    fn nlb_is_zeros_based() {
        let cmd = NvmeCommand::read(0, 4096, 4096);
        assert_eq!(cmd.nlb, 7); // 8 LBAs, 0's-based
        assert_eq!(cmd.bytes(), 4096);
        assert_eq!(cmd.offset(), 4096);
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let mut e = NvmeCommand::read(0, 0, 512).encode();
        e[0] = 0x7F;
        let err = NvmeCommand::decode(&e).unwrap_err();
        assert_eq!(err.opcode, 0x7F);
        assert!(err.to_string().contains("0x7f"));
    }

    #[test]
    #[should_panic(expected = "LBA-aligned")]
    fn unaligned_io_panics() {
        NvmeCommand::read(0, 100, 512);
    }

    #[test]
    fn completion_round_trips_with_phase() {
        for phase in [false, true] {
            for success in [false, true] {
                let c = Completion {
                    cid: 7,
                    sqhd: 99,
                    success,
                    phase,
                };
                assert_eq!(Completion::decode(&c.encode()), c);
            }
        }
    }
}
