//! `ull-nvme` — NVMe queueing substrate for the ull-ssd-study workspace.
//!
//! A faithful (simulation-grade) implementation of the NVMe multi-queue
//! mechanism the paper analyzes in §II-B: 64-byte submission entries,
//! 16-byte completion entries, ring wraparound, phase tags, SQ/CQ
//! doorbells, MSI timing, and a controller that drives the `ull-ssd`
//! backend. Both the kernel storage stack and the SPDK model in
//! `ull-stack` sit on these same rings.
//!
//! # Examples
//!
//! ```
//! use ull_nvme::{NvmeCommand, NvmeController};
//! use ull_simkit::SimTime;
//! use ull_ssd::{presets, Ssd};
//!
//! let mut ctrl = NvmeController::new(Ssd::new(presets::nvme750())?, 1, 128);
//! ctrl.submit(0, NvmeCommand::write(0, 0, 4096)).unwrap();
//! ctrl.ring_sq_doorbell(0, SimTime::ZERO);
//! let irq_at = ctrl.next_interrupt_at(0).expect("write in flight");
//! assert!(irq_at > SimTime::ZERO);
//! # Ok::<(), ull_ssd::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admin;
mod command;
mod controller;
mod queue;
mod wire;

pub use admin::{IdentifyController, IdentifyNamespace};
pub use command::{Completion, DecodeError, NvmeCommand, Opcode, LBA_BYTES};
pub use controller::{NvmeController, QueuePair};
pub use queue::{CompletionQueue, QueueFull, SubmissionQueue};
