//! `ull-ssd-study` — a simulation-based reproduction of *"Faster than
//! Flash: An In-Depth Study of System Challenges for Emerging Ultra-Low
//! Latency SSDs"* (Koh et al., IISWC 2019).
//!
//! This façade re-exports the workspace crates:
//!
//! * [`simkit`] — discrete-event simulation foundation.
//! * [`faults`] — deterministic fault-injection plans and recovery
//!   accounting (see docs/FAULTS.md).
//! * [`probe`] — deterministic span tracing and latency-breakdown
//!   attribution (see docs/OBSERVABILITY.md).
//! * [`flash`] — Z-NAND / V-NAND / BiCS / planar-MLC media models.
//! * [`ssd`] — the two device models (Z-SSD prototype, Intel 750).
//! * [`nvme`] — NVMe rings, doorbells, phase tags, controller.
//! * [`stack`] — kernel/SPDK paths and completion methods with CPU and
//!   memory-instruction accounting.
//! * [`netblock`] — the fig. 23 NBD server-client substrate.
//! * [`workload`] — fio-like job generation and reports.
//! * [`study`] — testbed presets and the per-figure experiments.
//!
//! # Examples
//!
//! The quickest way in — run one fio-like job on the ULL device:
//!
//! ```
//! use ull_ssd_study::prelude::*;
//!
//! let mut host = ull_study::host(Device::Ull, IoPath::KernelPolled);
//! let report = run_job(&mut host, &JobSpec::new("demo").ios(1_000));
//! assert_eq!(report.completed, 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ull_faults as faults;
pub use ull_flash as flash;
pub use ull_netblock as netblock;
pub use ull_nvme as nvme;
pub use ull_probe as probe;
pub use ull_simkit as simkit;
pub use ull_ssd as ssd;
pub use ull_stack as stack;
pub use ull_study as study;
pub use ull_workload as workload;

/// The most commonly used items, for `use ull_ssd_study::prelude::*`.
pub mod prelude {
    pub use ull_faults::{FaultPlan, FaultReport};
    pub use ull_probe::{ProbeConfig, ProbeReport, Stage};
    pub use ull_simkit::{Histogram, SimDuration, SimTime};
    pub use ull_ssd::{presets, Ssd, SsdConfig};
    pub use ull_stack::{Host, IoOp, IoPath};
    pub use ull_study::{self as ull_study, Device, Scale};
    pub use ull_workload::{precondition_full, run_job, Engine, JobSpec, Pattern};
}
