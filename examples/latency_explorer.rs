//! Latency explorer: sweep queue depth and block size across both devices
//! and all four software paths, printing a latency matrix — the kind of
//! exploration §IV and §V of the paper are built from.
//!
//! ```sh
//! cargo run --release --example latency_explorer
//! ```

use ull_ssd_study::prelude::*;

fn main() {
    let ios = 8_000u64;

    println!("== queue-depth sweep: 4KB random reads, libaio, kernel interrupt ==");
    println!(
        "{:10}{:>6}{:>12}{:>12}{:>12}",
        "device", "qd", "avg(us)", "p99(us)", "KIOPS"
    );
    for device in [Device::Ull, Device::Nvme750] {
        for qd in [1u32, 4, 16, 64] {
            let mut host = ull_study::host(device, IoPath::KernelInterrupt);
            let spec = JobSpec::new("sweep")
                .pattern(Pattern::Random)
                .engine(Engine::Libaio)
                .iodepth(qd)
                .ios(ios);
            let r = run_job(&mut host, &spec);
            println!(
                "{:10}{:>6}{:>12.1}{:>12.1}{:>12.0}",
                device.label(),
                qd,
                r.mean_latency().as_micros_f64(),
                r.latency.quantile(0.99).as_micros_f64(),
                r.iops() / 1e3
            );
        }
    }

    println!("\n== software-path sweep: 4KB sequential reads, qd1 ==");
    println!(
        "{:10}{:>11}{:>12}{:>10}{:>10}",
        "device", "path", "avg(us)", "usr%", "sys%"
    );
    for device in [Device::Ull, Device::Nvme750] {
        for path in [
            IoPath::KernelInterrupt,
            IoPath::KernelPolled,
            IoPath::KernelHybrid,
            IoPath::Spdk,
        ] {
            let mut host = ull_study::host(device, path);
            let engine = if path == IoPath::Spdk {
                Engine::SpdkPlugin
            } else {
                Engine::Pvsync2
            };
            let spec = JobSpec::new("path")
                .pattern(Pattern::Sequential)
                .engine(engine)
                .ios(ios);
            let r = run_job(&mut host, &spec);
            println!(
                "{:10}{:>11}{:>12.1}{:>10.1}{:>10.1}",
                device.label(),
                path.label(),
                r.mean_latency().as_micros_f64(),
                r.user_util * 100.0,
                r.kernel_util * 100.0
            );
        }
    }

    println!("\n== block-size sweep: ULL sequential reads, SPDK vs kernel ==");
    println!(
        "{:>8}{:>14}{:>12}{:>8}",
        "bs", "kernel(us)", "spdk(us)", "gain%"
    );
    for bs in [4u32 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20] {
        let lat = |path: IoPath| {
            let mut host = ull_study::host(Device::Ull, path);
            let engine = if path == IoPath::Spdk {
                Engine::SpdkPlugin
            } else {
                Engine::Pvsync2
            };
            let spec = JobSpec::new("bs")
                .pattern(Pattern::Sequential)
                .block_size(bs)
                .engine(engine)
                .ios(2_000);
            run_job(&mut host, &spec).mean_latency().as_micros_f64()
        };
        let k = lat(IoPath::KernelInterrupt);
        let s = lat(IoPath::Spdk);
        println!(
            "{:>7}K{:>14.1}{:>12.1}{:>8.1}",
            bs / 1024,
            k,
            s,
            (k - s) / k * 100.0
        );
    }
}
