//! Polling trade-offs: latency vs CPU vs memory traffic for the three
//! kernel completion methods and SPDK — the §V story in one table.
//!
//! ```sh
//! cargo run --release --example polling_tradeoffs
//! ```

use ull_ssd_study::prelude::*;
use ull_ssd_study::stack::StackFn;

fn main() {
    println!("4KB sequential reads on the ULL SSD, 60k I/Os per path\n");
    println!(
        "{:>11}{:>10}{:>14}{:>8}{:>8}{:>12}{:>12}",
        "path", "avg(us)", "p99.999(us)", "usr%", "sys%", "loads/io", "stores/io"
    );
    for path in [
        IoPath::KernelInterrupt,
        IoPath::KernelPolled,
        IoPath::KernelHybrid,
        IoPath::Spdk,
    ] {
        let mut host = ull_study::host(Device::Ull, path);
        let engine = if path == IoPath::Spdk {
            Engine::SpdkPlugin
        } else {
            Engine::Pvsync2
        };
        let spec = JobSpec::new("tradeoff")
            .pattern(Pattern::Sequential)
            .engine(engine)
            .ios(60_000);
        let r = run_job(&mut host, &spec);
        println!(
            "{:>11}{:>10.1}{:>14.1}{:>8.1}{:>8.1}{:>12.0}{:>12.0}",
            path.label(),
            r.mean_latency().as_micros_f64(),
            r.five_nines().as_micros_f64(),
            r.user_util * 100.0,
            r.kernel_util * 100.0,
            r.mem.loads as f64 / r.completed as f64,
            r.mem.stores as f64 / r.completed as f64,
        );
    }

    println!("\nwhere the polled path's cycles go (the fig. 14 view):");
    let mut host = ull_study::host(Device::Ull, IoPath::KernelPolled);
    let r = run_job(&mut host, &JobSpec::new("breakdown").ios(20_000));
    let total = r
        .busy_by_fn
        .iter()
        .map(|(_, _, d)| d.as_nanos())
        .sum::<u64>() as f64;
    for (f, m, d) in r.busy_by_fn.iter().take(6) {
        println!(
            "  {:?} {:?}: {:.1}%",
            m,
            f,
            d.as_nanos() as f64 / total * 100.0
        );
    }
    let _ = StackFn::BlkMqPoll; // re-exported for users who want raw queries
}
