//! Server-client scenario: a client with ext4 mounts the ULL SSD over a
//! network block device, served either by the kernel NBD path or by
//! SPDK-NBD — the fig. 23 experiment as a runnable program.
//!
//! ```sh
//! cargo run --release --example nbd_server
//! ```

use ull_ssd_study::netblock::{NbdServerKind, NbdSystem};
use ull_ssd_study::prelude::*;

fn main() {
    let ops = 20_000u64;
    println!("file reads/writes over ext4-on-NBD (ULL SSD export), {ops} ops per cell\n");
    println!(
        "{:6}{:>7}{:>16}{:>14}{:>8}",
        "op", "size", "kernel-nbd(us)", "spdk-nbd(us)", "gain%"
    );
    for write in [false, true] {
        for size in [4u32 << 10, 16 << 10, 64 << 10] {
            let mut lat = [0.0f64; 2];
            for (i, kind) in [NbdServerKind::Kernel, NbdServerKind::Spdk]
                .iter()
                .enumerate()
            {
                let mut sys =
                    NbdSystem::new(presets::ull_800g(), *kind, 0xD15C).expect("valid preset");
                let mut at = SimTime::ZERO;
                let mut sum = 0.0;
                for k in 0..ops {
                    let file_id = k.wrapping_mul(2654435761);
                    let r = if write {
                        sys.file_write(at, file_id, size)
                    } else {
                        sys.file_read(at, file_id, size)
                    };
                    sum += r.latency.as_micros_f64();
                    at = r.done + SimDuration::from_micros(3);
                }
                lat[i] = sum / ops as f64;
            }
            println!(
                "{:6}{:>6}K{:>16.1}{:>14.1}{:>8.1}",
                if write { "write" } else { "read" },
                size / 1024,
                lat[0],
                lat[1],
                (lat[0] - lat[1]) / lat[0] * 100.0
            );
        }
    }
    println!("\nreads enjoy the server-side bypass; writes are pinned by client-side ext4");
    println!("metadata and journaling — the kernel the client cannot bypass (§VI-C).");
}
