//! GC pressure study: precondition the whole address space, then hammer the
//! device with random overwrites and watch latency and power over time —
//! the experiment behind figs. 7b and 8.
//!
//! ```sh
//! cargo run --release --example gc_pressure
//! ```

use ull_ssd_study::prelude::*;

fn main() {
    for device in [Device::Nvme750, Device::Ull] {
        let ios = match device {
            Device::Nvme750 => 120_000,
            Device::Ull => 300_000,
        };
        let mut host = ull_study::host(device, IoPath::KernelInterrupt);
        precondition_full(&mut host);
        let spec = JobSpec::new("overwrite")
            .pattern(Pattern::Random)
            .read_fraction(0.0)
            .engine(Engine::Libaio)
            .iodepth(2)
            .ios(ios);
        let r = run_job(&mut host, &spec);

        println!("== {} ==", device.label());
        println!("{r}");
        println!(
            "  GC: {} units migrated, {} erases, {} forced foreground events",
            r.device.gc_migrated_units, r.device.flash_erases, r.device.forced_gc_events
        );
        println!("  write latency over time (10ms bins, sampled):");
        let bins = r.latency_series.bins();
        let step = (bins.len() / 12).max(1);
        for (t, lat) in bins.iter().step_by(step) {
            let bar_len = (lat.log10().max(0.0) * 12.0) as usize;
            println!(
                "    {:>7.2}s {:>10.1}us |{}",
                t.as_secs_f64(),
                lat,
                "#".repeat(bar_len)
            );
        }
        println!("  power over time (sampled):");
        let step = (r.power_series.len() / 8).max(1);
        for (t, w) in r.power_series.iter().step_by(step) {
            println!("    {:>7.2}s {w:>6.2}W", t.as_secs_f64());
        }
        println!();
    }
}
