//! Quickstart: build the two devices of the paper's testbed, run the same
//! fio-like job on each, and print fio-style reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ull_ssd_study::prelude::*;

fn main() {
    println!("ull-ssd-study quickstart: 4KB random reads, libaio, qd8\n");
    for device in [Device::Ull, Device::Nvme750] {
        let mut host = ull_study::host(device, IoPath::KernelInterrupt);
        let spec = JobSpec::new(format!("randread-{}", device.label()))
            .pattern(Pattern::Random)
            .engine(Engine::Libaio)
            .iodepth(8)
            .ios(20_000);
        let report = run_job(&mut host, &spec);
        println!("{report}\n");
    }

    println!("and the same on the polled kernel path (pvsync2 --hipri):\n");
    for device in [Device::Ull, Device::Nvme750] {
        let mut host = ull_study::host(device, IoPath::KernelPolled);
        let spec = JobSpec::new(format!("hipri-{}", device.label())).ios(20_000);
        let report = run_job(&mut host, &spec);
        println!("{report}\n");
    }
}
