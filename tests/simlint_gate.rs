//! Tier-1 gate: the whole workspace must be simlint-clean.
//!
//! This test is what makes the determinism rules *enforced* rather than
//! advisory: `cargo test` fails on any S000-S014 finding, so a PR cannot
//! land wall-clock access, ambient RNG, bucket-order iteration, float time
//! arithmetic, threading, new panicking library paths, per-I/O String
//! churn, shared mutable state, address-keyed ordering, unjustified
//! `unsafe` or orderless timestamped events without either fixing them or
//! writing a justified `// simlint: allow(...)` that shows up in review.
//! See docs/DETERMINISM.md for the rule catalogue and
//! docs/STATIC_ANALYSIS.md for the analyzer architecture.

use std::path::Path;

#[test]
fn workspace_is_simlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = ull_simlint::analyze_workspace(root).expect("workspace scan must succeed");
    // Guard against a silently truncated walk (e.g. a moved crates/ dir)
    // making the gate vacuous.
    assert!(
        analysis.files_scanned >= 50,
        "suspiciously few files scanned ({}); did the workspace layout change?",
        analysis.files_scanned
    );
    assert!(
        analysis.findings.is_empty(),
        "simlint findings in the workspace:\n{}",
        ull_simlint::render_human(&analysis.findings, analysis.files_scanned)
    );
}

#[test]
fn rule_catalogue_is_complete_and_ordered() {
    let codes: Vec<&str> = ull_simlint::RULES.iter().map(|r| r.code).collect();
    assert_eq!(
        codes,
        [
            "S000", "S001", "S002", "S003", "S004", "S005", "S006", "S007", "S008", "S009", "S010",
            "S011", "S012", "S013", "S014",
        ]
    );
    for r in ull_simlint::RULES {
        assert!(
            !r.summary.is_empty() && !r.scope.is_empty() && !r.brief.is_empty(),
            "{} undocumented",
            r.code
        );
    }
}

#[test]
fn committed_baseline_matches_the_current_findings() {
    // CI ratchets `--json` output against simlint_baseline.json; this test
    // keeps the committed baseline honest locally. The workspace is
    // currently finding-free, so the baseline must be too: a regression
    // shows up in `workspace_is_simlint_clean`, a stale baseline (e.g. a
    // rule added without regenerating it) shows up here.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join("simlint_baseline.json"))
        .expect("simlint_baseline.json must be committed at the workspace root");
    let base = ull_simlint::parse_baseline_counts(&text)
        .expect("baseline must carry a parseable rule_counts object");
    let analysis = ull_simlint::analyze_workspace(root).expect("workspace scan must succeed");
    let diff = ull_simlint::diff_against_baseline(&analysis.findings, &base);
    assert!(
        diff.regressions.is_empty(),
        "per-rule counts regressed vs simlint_baseline.json: {:?}",
        diff.regressions
    );
    assert!(
        diff.improvements.is_empty(),
        "baseline is stale — regenerate with `cargo run -p ull-simlint -- --json > \
         simlint_baseline.json`: {:?}",
        diff.improvements
    );
    // Every catalogued rule must appear in the committed baseline, so the
    // ratchet never has to guess whether a rule existed when it was written.
    for r in ull_simlint::RULES {
        assert!(
            base.contains_key(r.code),
            "baseline missing rule {} — regenerate it",
            r.code
        );
    }
}
