//! Tier-1 gate: the whole workspace must be simlint-clean.
//!
//! This test is what makes the determinism rules *enforced* rather than
//! advisory: `cargo test` fails on any S001-S010 finding, so a PR cannot
//! land wall-clock access, ambient RNG, bucket-order iteration, float time
//! arithmetic, threading, new panicking library paths or per-I/O String
//! churn without either fixing them or writing a justified
//! `// simlint: allow(...)` that shows up in review. See
//! docs/DETERMINISM.md for the rule catalogue.

use std::path::Path;

#[test]
fn workspace_is_simlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let analysis = ull_simlint::analyze_workspace(root).expect("workspace scan must succeed");
    // Guard against a silently truncated walk (e.g. a moved crates/ dir)
    // making the gate vacuous.
    assert!(
        analysis.files_scanned >= 50,
        "suspiciously few files scanned ({}); did the workspace layout change?",
        analysis.files_scanned
    );
    assert!(
        analysis.findings.is_empty(),
        "simlint findings in the workspace:\n{}",
        ull_simlint::render_human(&analysis.findings, analysis.files_scanned)
    );
}

#[test]
fn rule_catalogue_is_complete_and_ordered() {
    let codes: Vec<&str> = ull_simlint::RULES.iter().map(|r| r.code).collect();
    assert_eq!(
        codes,
        ["S001", "S002", "S003", "S004", "S005", "S006", "S007", "S008", "S009", "S010"]
    );
    for r in ull_simlint::RULES {
        assert!(
            !r.summary.is_empty() && !r.scope.is_empty(),
            "{} undocumented",
            r.code
        );
    }
}
