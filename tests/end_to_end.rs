//! Cross-crate integration tests: the full pipeline from workload spec
//! through host stack, NVMe rings and device model back to reports.

use ull_ssd_study::prelude::*;
use ull_ssd_study::study::experiments::{completion, device_level, nbd, spdk, table1};

#[test]
fn table1_reproduces() {
    let t = table1::run();
    assert!(t.check().is_empty(), "{:?}", t.check());
}

#[test]
fn headline_latency_ordering_holds_end_to_end() {
    // The paper's single most important ordering, measured through the
    // whole stack: SPDK < poll < hybrid-ish < interrupt on the ULL device,
    // and every ULL config beats the NVMe device's random reads.
    let mean = |device, path| {
        let mut host = ull_study::host(device, path);
        let engine = if path == IoPath::Spdk {
            Engine::SpdkPlugin
        } else {
            Engine::Pvsync2
        };
        let spec = JobSpec::new("e2e")
            .pattern(Pattern::Random)
            .engine(engine)
            .ios(6_000);
        run_job(&mut host, &spec).mean_latency().as_micros_f64()
    };
    let ull_int = mean(Device::Ull, IoPath::KernelInterrupt);
    let ull_poll = mean(Device::Ull, IoPath::KernelPolled);
    let ull_spdk = mean(Device::Ull, IoPath::Spdk);
    let nvme_int = mean(Device::Nvme750, IoPath::KernelInterrupt);
    assert!(
        ull_spdk < ull_poll,
        "spdk {ull_spdk:.1} !< poll {ull_poll:.1}"
    );
    assert!(
        ull_poll < ull_int,
        "poll {ull_poll:.1} !< interrupt {ull_int:.1}"
    );
    assert!(
        nvme_int > 3.0 * ull_int,
        "NVMe {nvme_int:.1} !>> ULL {ull_int:.1}"
    );
}

#[test]
fn whole_study_is_deterministic() {
    let fingerprint = || {
        let r = device_level::fig06_run(Scale::Quick);
        r.rows
            .iter()
            .map(|row| format!("{:.6}/{:.6}", row.read_mean_us, row.read_five_nines_us))
            .collect::<Vec<_>>()
            .join(",")
    };
    assert_eq!(fingerprint(), fingerprint());
}

#[test]
fn device_metrics_flow_to_reports() {
    let mut host = ull_study::host(Device::Nvme750, IoPath::KernelInterrupt);
    precondition_full(&mut host);
    let spec = JobSpec::new("gc")
        .pattern(Pattern::Random)
        .read_fraction(0.0)
        .engine(Engine::Libaio)
        .iodepth(4)
        .ios(60_000);
    let r = run_job(&mut host, &spec);
    assert!(r.device.gc_migrated_units > 0, "GC visible in report");
    assert!(r.device.write_amplification() > 1.5);
    assert!(r.avg_power_w > 3.8, "active power above idle");
    assert!(!r.power_series.is_empty() && r.latency_series.bins().len() > 1);
}

#[test]
fn suspend_resume_reaches_the_report_layer() {
    let mut host = ull_study::host(Device::Ull, IoPath::KernelInterrupt);
    let spec = JobSpec::new("mix")
        .pattern(Pattern::Random)
        .read_fraction(0.5)
        .ios(20_000);
    let r = run_job(&mut host, &spec);
    assert!(
        r.device.program_suspensions > 0,
        "Z-NAND suspend/resume must fire: {:?}",
        r.device
    );
}

#[test]
fn spdk_and_nbd_experiments_agree_on_the_story() {
    // SPDK pays off directly on the device (fig. 18)...
    let f18 = spdk::fig171819_run(Scale::Quick);
    assert!(f18.check().is_empty(), "{:#?}", f18.check());
    // ...but through a client-side filesystem only reads keep most of it
    // (fig. 23).
    let f23 = nbd::fig23_run(Scale::Quick);
    assert!(f23.check().is_empty(), "{:#?}", f23.check());
    assert!(f23.mean_gain(false) > 4.0 * f23.mean_gain(true));
}

#[test]
fn polling_burns_cpu_but_wins_latency_everywhere_it_should() {
    let f = completion::fig0910_run(Scale::Quick);
    assert!(f.check().is_empty(), "{:#?}", f.check());
    let cpu = completion::fig1213_run(Scale::Quick);
    assert!(cpu.check().is_empty(), "{:#?}", cpu.check());
    // Cross-figure consistency: the method that wins latency on ULL is the
    // one that burns the core.
    assert!(cpu.mean_kernel(IoPath::KernelPolled) > 2.0 * cpu.mean_kernel(IoPath::KernelInterrupt));
}

#[test]
fn big_requests_erase_the_stack_advantage() {
    let mean = |path: IoPath, bs: u32| {
        let mut host = ull_study::host(Device::Ull, path);
        let engine = if path == IoPath::Spdk {
            Engine::SpdkPlugin
        } else {
            Engine::Pvsync2
        };
        let spec = JobSpec::new("big")
            .pattern(Pattern::Sequential)
            .block_size(bs)
            .engine(engine)
            .ios(800);
        run_job(&mut host, &spec).mean_latency().as_micros_f64()
    };
    let small_gain = (mean(IoPath::KernelInterrupt, 4096) - mean(IoPath::Spdk, 4096))
        / mean(IoPath::KernelInterrupt, 4096);
    let big_gain = (mean(IoPath::KernelInterrupt, 1 << 20) - mean(IoPath::Spdk, 1 << 20))
        / mean(IoPath::KernelInterrupt, 1 << 20);
    assert!(small_gain > 0.12, "small-block SPDK gain {small_gain:.2}");
    assert!(
        big_gain < small_gain / 3.0,
        "big-block gain {big_gain:.2} must collapse"
    );
}
