//! Randomized-but-deterministic tests on the core data structures and
//! invariants (DESIGN.md §7).
//!
//! These used to be `proptest` properties; they are now driven by the
//! workspace's own seeded [`SplitMix64`] generator so the whole test suite
//! builds offline and — more importantly — every run explores *exactly* the
//! same cases. Each property walks a fixed set of seeds and generates the
//! same shapes the proptest strategies did.

use ull_ssd_study::faults::{FaultPlan, FaultReport};
use ull_ssd_study::netblock::{NbdServerKind, NbdSystem};
use ull_ssd_study::nvme::{CompletionQueue, NvmeCommand, SubmissionQueue};
use ull_ssd_study::simkit::{
    EventQueue, Histogram, SimDuration, SimTime, SplitMix64, Timeline, TimingWheel,
};
use ull_ssd_study::ssd::{presets, Ftl, GcPolicy, LaneId, RemapChecker, WearConfig, WriteBuffer};
use ull_ssd_study::stack::{split_request, IoOp, IoPath};
use ull_ssd_study::study::{host, Device};
use ull_ssd_study::workload::{run_job, JobSpec, Pattern};

/// Seeds each property iterates; chosen arbitrarily but fixed forever.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 0xDEAD_BEEF, 0x5EED_CAFE];

fn vec_u64(rng: &mut SplitMix64, len_lo: u64, len_hi: u64, lo: u64, hi: u64) -> Vec<u64> {
    let len = len_lo + rng.below(len_hi - len_lo);
    (0..len).map(|_| lo + rng.below(hi - lo)).collect()
}

fn vec_bool(rng: &mut SplitMix64, len_lo: u64, len_hi: u64) -> Vec<bool> {
    let len = len_lo + rng.below(len_hi - len_lo);
    (0..len).map(|_| rng.chance(0.5)).collect()
}

/// Histogram quantiles stay within one bucket (<2% relative error) of the
/// exact order statistic.
#[test]
fn histogram_quantiles_track_exact() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let values = vec_u64(&mut rng, 50, 400, 1, 10_000_000);
        let q = rng.next_f64();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(SimDuration::from_nanos(v));
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = (((q * sorted.len() as f64).floor() as usize) + 1).min(sorted.len());
        let exact = sorted[rank - 1] as f64;
        let est = h.quantile(q).as_nanos() as f64;
        // The estimate is the bucket's upper edge: never below the exact
        // value, and within the bucket's relative width above it.
        assert!(
            est >= exact - 1.0,
            "seed {seed}: est {est} below exact {exact}"
        );
        assert!(
            est <= exact * 1.02 + 1.0,
            "seed {seed}: est {est} too far above exact {exact}"
        );
    }
}

/// Histograms record exact count/min/max/mean.
#[test]
fn histogram_moments_exact() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let values = vec_u64(&mut rng, 1, 300, 0, 1_000_000);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(SimDuration::from_nanos(v));
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.min().as_nanos(), *values.iter().min().expect("non-empty"));
        assert_eq!(h.max().as_nanos(), *values.iter().max().expect("non-empty"));
        let mean = values.iter().sum::<u64>() / values.len() as u64;
        assert_eq!(h.mean().as_nanos(), mean);
    }
}

/// The event queue is a stable time-ordered priority queue.
#[test]
fn event_queue_is_stable_sort() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let times = vec_u64(&mut rng, 1, 200, 0, 1000);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort(); // stable: ties keep insertion order by second key
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        assert_eq!(popped, expected, "seed {seed}");
    }
}

/// FIFO tie-breaking survives interleaved schedule/pop: events scheduled
/// across pop boundaries still come out in (time, insertion) order, i.e.
/// the sequence counter is global to the queue's lifetime, not to one
/// batch. The model is a vector popped by stable (time, id) minimum.
#[test]
fn event_queue_fifo_survives_interleaving() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0x1757);
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut next_id = 0u64;
        for _ in 0..400 {
            if model.is_empty() || rng.chance(0.6) {
                // Times from a tiny range, so equal-time ties are common.
                let t = rng.below(16);
                q.schedule(SimTime::from_nanos(t), next_id);
                model.push((t, next_id));
                next_id += 1;
            } else {
                let min = *model.iter().min().expect("non-empty");
                let idx = model.iter().position(|&e| e == min).expect("present");
                model.remove(idx);
                let (t, id) = q.pop().expect("queue tracks model");
                assert_eq!((t.as_nanos(), id), min, "seed {seed}");
            }
        }
        // Drain the rest: still stable (time, insertion) order.
        let mut rest = Vec::new();
        while let Some((t, id)) = q.pop() {
            rest.push((t.as_nanos(), id));
        }
        model.sort_unstable(); // (time, id) = FIFO within equal times
        assert_eq!(rest, model, "seed {seed}");
    }
}

/// The timing wheel is a drop-in replacement for the heap: under random
/// interleavings of schedule and pop — with a delta distribution that
/// exercises same-slot bursts, cross-slot ordering, *and* far-future
/// overflow promotion — the wheel pops exactly the (time, payload)
/// sequence the retained `EventQueue` reference does.
#[test]
fn timing_wheel_matches_heap_reference() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0x3EE1);
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut now = SimTime::ZERO;
        let mut next_id = 0u64;
        for _ in 0..2_000 {
            if heap.is_empty() || rng.chance(0.55) {
                // Mixed horizon: mostly near (same or adjacent slots),
                // sometimes zero (same-instant FIFO burst), occasionally
                // far enough to land in the wheel's overflow level.
                let delta = if rng.chance(0.15) {
                    0
                } else if rng.chance(0.1) {
                    1_000_000 + rng.below(500_000_000) // far: overflow level
                } else {
                    rng.below(30_000) // near: wheel slots
                };
                let at = now + SimDuration::from_nanos(delta);
                wheel.schedule(at, next_id);
                heap.schedule(at, next_id);
                next_id += 1;
            } else {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "seed {seed}");
                let w = wheel.pop();
                let h = heap.pop();
                assert_eq!(w, h, "seed {seed}: wheel diverged from heap");
                // Popping advances simulated time, so later schedules are
                // relative to the new now — the engine-loop access pattern.
                if let Some((t, _)) = w {
                    now = t;
                }
            }
            assert_eq!(wheel.len(), heap.len(), "seed {seed}");
        }
        // Drain both to the end: the tails agree too.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h, "seed {seed}: tails diverged");
            if w.is_none() {
                break;
            }
        }
    }
}

/// Same-instant bursts pop FIFO on the wheel, exactly like the heap:
/// the sequence counter is global to the wheel's lifetime, so events
/// scheduled for one instant across pop boundaries still come out in
/// insertion order.
#[test]
fn timing_wheel_same_instant_fifo_bursts() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0xF1F0);
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let t = SimTime::from_nanos(rng.below(1_000_000));
        for id in 0..64u64 {
            wheel.schedule(t, id);
        }
        // Interleave: pop half, then schedule more at the same instant.
        for id in 0..32u64 {
            assert_eq!(wheel.pop(), Some((t, id)), "seed {seed}");
        }
        for id in 64..96u64 {
            wheel.schedule(t, id);
        }
        for id in 32..96u64 {
            assert_eq!(wheel.pop(), Some((t, id)), "seed {seed}");
        }
        assert!(wheel.is_empty());
    }
}

/// Far-future events survive overflow promotion with their order intact:
/// schedule a cluster far beyond the wheel horizon, chew through nearer
/// work, and the far cluster still pops in (time, insertion) order.
#[test]
fn timing_wheel_far_future_promotion_preserves_order() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0xFA2);
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        // A far cluster: deliberately includes duplicate times.
        for id in 0..100u64 {
            let t = 1_000_000_000 + rng.below(50) * 1_000_000;
            wheel.schedule(SimTime::from_nanos(t), id);
            expect.push((t, id));
        }
        // Near work that forces the wheel to rotate toward the horizon.
        for id in 100..400u64 {
            let t = rng.below(900_000_000);
            wheel.schedule(SimTime::from_nanos(t), id);
            expect.push((t, id));
        }
        expect.sort(); // (time, id); id order == insertion order
        let mut got = Vec::new();
        while let Some((t, id)) = wheel.pop() {
            got.push((t.as_nanos(), id));
        }
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// `pop_if_before` and `pop_same_instant` agree with the plain pop-loop
/// semantics the engine loops rely on: `pop_if_before(t)` yields exactly
/// the events strictly before `t`, and `pop_same_instant` drains exactly
/// one instant's FIFO batch.
#[test]
fn timing_wheel_conditional_pops_match_reference() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0xC0DE);
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut reference: EventQueue<u64> = EventQueue::new();
        for id in 0..300u64 {
            let t = SimTime::from_nanos(rng.below(64)); // dense ties
            wheel.schedule(t, id);
            reference.schedule(t, id);
        }
        let cutoff = SimTime::from_nanos(32);
        // Drain [0, cutoff) via pop_if_before.
        while let Some((t, id)) = wheel.pop_if_before(cutoff) {
            assert!(t < cutoff, "seed {seed}: popped event at/after cutoff");
            assert_eq!(Some((t, id)), reference.pop(), "seed {seed}");
        }
        assert!(wheel.peek_time().is_none_or(|t| t >= cutoff));
        // Drain the rest one instant at a time via pop_same_instant.
        let mut batch = Vec::new();
        while let Some(t) = wheel.pop_same_instant(&mut batch) {
            for &id in &batch {
                assert_eq!(Some((t, id)), reference.pop(), "seed {seed}");
            }
            batch.clear();
        }
        assert!(reference.pop().is_none(), "seed {seed}: wheel lost events");
    }
}

/// `schedule_keyed` orders equal-time events by key (the NVMe cid
/// tie-break), falling back to insertion order on equal keys.
#[test]
fn timing_wheel_keyed_ties_order_by_key() {
    let mut wheel: TimingWheel<&'static str> = TimingWheel::new();
    let t = SimTime::from_nanos(77);
    wheel.schedule_keyed(t, 30, "c");
    wheel.schedule_keyed(t, 10, "a");
    wheel.schedule_keyed(t, 20, "b");
    wheel.schedule_keyed(t, 10, "a2"); // equal key: insertion order
    assert_eq!(wheel.pop(), Some((t, "a")));
    assert_eq!(wheel.pop(), Some((t, "a2")));
    assert_eq!(wheel.pop(), Some((t, "b")));
    assert_eq!(wheel.pop(), Some((t, "c")));
    assert_eq!(wheel.pop(), None);
}

/// Timelines serve FIFO: completions are monotone, never start before the
/// request arrives, and busy time equals the sum of durations.
#[test]
fn timeline_fifo_invariants() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let n = 1 + rng.below(199);
        let mut arrivals: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.below(10_000), 1 + rng.below(499)))
            .collect();
        arrivals.sort_by_key(|r| r.0); // submit in arrival order
        let mut tl = Timeline::new();
        let mut last_end = SimTime::ZERO;
        let mut total = 0u64;
        for &(at, dur) in &arrivals {
            let slot = tl.reserve(SimTime::from_nanos(at), SimDuration::from_nanos(dur));
            assert!(slot.start >= SimTime::from_nanos(at));
            assert!(slot.start >= last_end);
            assert_eq!(slot.end - slot.start, SimDuration::from_nanos(dur));
            last_end = slot.end;
            total += dur;
        }
        assert_eq!(tl.busy_time().as_nanos(), total, "seed {seed}");
    }
}

/// Priority reservations never finish after "waiting like normal work"
/// would, and normal work is pushed back by at most dur + resume cost.
#[test]
fn priority_reservation_bounds() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let base = 1 + rng.below(999);
            let arrive = rng.below(800);
            let dur = 1 + rng.below(199);
            let mut tl = Timeline::new();
            tl.reserve(SimTime::ZERO, SimDuration::from_nanos(base));
            let before = tl.busy_until();
            let sus = SimDuration::from_nanos(5);
            let res = SimDuration::from_nanos(7);
            let slot = tl.reserve_priority(
                SimTime::from_nanos(arrive),
                SimDuration::from_nanos(dur),
                sus,
                res,
            );
            // FIFO alternative would start at max(arrive, base).
            let fifo_start = arrive.max(base);
            assert!(slot.start.as_nanos() <= fifo_start + sus.as_nanos());
            // Normal work resumes no later than the resume penalty after the
            // later of (its own old end, the priority slot's end).
            assert!(tl.busy_until() <= before.max(slot.end) + res);
        }
    }
}

/// The FTL keeps L2P exact under arbitrary overwrite streams: every written
/// lpn resolves, and unwritten lpns never do.
#[test]
fn ftl_mapping_is_exact_under_overwrites() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let ops = vec_u64(&mut rng, 1, 600, 0, 48);
        let gc = GcPolicy {
            low_watermark: 2,
            units_per_host_write: 4,
            parallel: false,
        };
        // 2 lanes x 12 blocks x 8 units = 192 physical for 48 logical.
        let mut ftl = Ftl::new(2, 12, 8, gc);
        let mut written = std::collections::BTreeSet::new();
        for &lpn in &ops {
            ftl.append(lpn);
            written.insert(lpn);
        }
        for &lpn in &written {
            assert!(
                ftl.lookup(lpn).is_some(),
                "seed {seed}: lost mapping for {lpn}"
            );
        }
        for lpn in 0..48u64 {
            if !written.contains(&lpn) {
                assert!(ftl.lookup(lpn).is_none());
            }
        }
    }
}

/// NVMe submission rings deliver commands FIFO with exact contents under
/// arbitrary interleavings of pushes and pops.
#[test]
fn sq_ring_matches_model() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let ops = vec_bool(&mut rng, 1, 300);
        let mut sq = SubmissionQueue::new(8);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u16;
        for &push in &ops {
            if push {
                let cmd = NvmeCommand::read(next, next as u64 * 4096, 4096);
                match sq.push(cmd) {
                    Ok(()) => {
                        model.push_back(cmd);
                        next = next.wrapping_add(1);
                    }
                    Err(_) => assert_eq!(model.len(), 7), // size-1 capacity
                }
            } else {
                assert_eq!(sq.pop(), model.pop_front());
            }
            assert_eq!(sq.len() as usize, model.len());
        }
    }
}

/// Completion rings never deliver an entry twice nor invent one, across
/// arbitrary post/consume interleavings (phase-tag correctness).
#[test]
fn cq_phase_tags_exact() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let ops = vec_bool(&mut rng, 1, 400);
        let mut cq = CompletionQueue::new(5);
        let mut posted = std::collections::VecDeque::new();
        let mut next = 0u16;
        for &post in &ops {
            if post {
                if cq.post(next, 0, true).is_ok() {
                    posted.push_back(next);
                    next = next.wrapping_add(1);
                }
            } else {
                match cq.peek() {
                    Some(c) => {
                        assert_eq!(Some(c.cid), posted.pop_front());
                        cq.advance();
                    }
                    None => assert!(posted.is_empty()),
                }
            }
        }
    }
}

/// The write buffer never admits more units than its capacity before the
/// corresponding releases, and admission times are monotone per arrival
/// order.
#[test]
fn write_buffer_conserves_slots() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let cap = 1 + rng.below(31) as u32;
        let prog_ns = vec_u64(&mut rng, 1, 200, 1, 5000);
        let mut buf = WriteBuffer::new(cap);
        let mut admitted_before_release = 0u64;
        let mut last_admit = SimTime::ZERO;
        for (i, &p) in prog_ns.iter().enumerate() {
            let at = SimTime::from_nanos(i as u64 * 10);
            let admit = buf.admit(at, i as u64);
            assert!(admit >= at, "admission cannot precede arrival");
            assert!(
                admit >= last_admit || admit >= at,
                "admission times regress"
            );
            last_admit = admit;
            buf.retire(i as u64, admit + SimDuration::from_nanos(p));
            admitted_before_release += 1;
        }
        assert_eq!(buf.admitted(), admitted_before_release);
        assert!(buf.in_flight() <= prog_ns.len());
    }
}

/// Request splitting always covers the byte range exactly, contiguously and
/// within the limit.
#[test]
fn split_request_partitions_exactly() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            let offset = rng.below(1_000_000);
            let len = 1 + rng.below(3_999_999) as u32;
            let max = 1 + rng.below(299_999) as u32;
            let parts = split_request(offset, len, max);
            assert_eq!(parts[0].0, offset);
            let mut expect = offset;
            let mut total = 0u64;
            for &(o, l) in &parts {
                assert_eq!(o, expect, "non-contiguous split");
                assert!(l >= 1 && l <= max);
                expect = o + l as u64;
                total += l as u64;
            }
            assert_eq!(total, len as u64);
        }
    }
}

/// The remap checker stays injective no matter which blocks die.
#[test]
fn remap_checker_injective() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed);
        let bad: std::collections::BTreeSet<u32> =
            (0..rng.below(16)).map(|_| rng.below(64) as u32).collect();
        let mut r = RemapChecker::new(64, 16);
        for &b in &bad {
            r.retire(b)
                .expect("spares cover at most 16 distinct bad blocks");
        }
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..64 {
            assert!(
                seen.insert(r.resolve(v).expect("in range")),
                "seed {seed}: collision at {v}"
            );
        }
    }
}

/// Valid-unit conservation under heavy GC churn (deterministic, heavier
/// than the randomized cases).
#[test]
fn ftl_conserves_valid_units_under_churn() {
    let gc = GcPolicy {
        low_watermark: 2,
        units_per_host_write: 4,
        parallel: false,
    };
    let mut ftl = Ftl::new(4, 16, 8, gc);
    let logical = 256u64;
    let mut x = 0x12345u64;
    for _ in 0..20_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ftl.append((x >> 33) % logical);
    }
    for lpn in 0..logical {
        let ppa = ftl
            .lookup(lpn)
            .expect("all lpns written at least once eventually");
        assert!(ppa.lane <= LaneId(3));
    }
    assert!(ftl.migrated_units() > 0);
}

/// Under a hostile NVMe timeout lottery, synchronous completions to the
/// same LBA never reorder: control returns to the application at
/// monotonically nondecreasing sim times even while the host aborts,
/// retries with backoff, and occasionally resets the controller
/// mid-request.
#[test]
fn same_lba_completions_never_reorder_under_timeouts() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0xFA);
        let mut h = host(Device::Ull, IoPath::KernelInterrupt);
        let mut plan = FaultPlan::uniform(seed, 0.0);
        plan.nvme_timeout_prob = 0.3;
        h.set_fault_plan(&plan);
        let mut t = SimTime::ZERO;
        let mut last_visible = SimTime::ZERO;
        for i in 0..200u64 {
            let op = if rng.chance(0.5) {
                IoOp::Read
            } else {
                IoOp::Write
            };
            // Occasionally a large I/O that splits into several NVMe
            // commands — the interesting case, since any one part can
            // be timed out, retried, or destroyed by a reset.
            let len = if rng.chance(0.2) { 512 << 10 } else { 4096 };
            let r = h.io_sync(op, 0, len, t);
            assert_eq!(r.submitted, t, "seed {seed} io {i}");
            assert_eq!(
                r.latency,
                r.user_visible - r.submitted,
                "seed {seed} io {i}"
            );
            assert!(
                r.user_visible >= last_visible,
                "seed {seed}: io {i} completed before its predecessor"
            );
            last_visible = r.user_visible;
            t = r.user_visible + SimDuration::from_nanos(rng.below(2_000));
        }
        let c = h.nvme_fault_counters();
        assert!(c.injected_timeouts > 0, "seed {seed}: lottery never fired");
        assert_eq!(c.aborts, c.injected_timeouts, "seed {seed}");
    }
}

/// Program-fail recovery preserves read-after-write: the lpn whose
/// program failed resolves to the freshly re-appended copy, and no
/// other live mapping is lost — regardless of whether the failing
/// block was retired immediately or retirement was deferred.
#[test]
fn program_fail_recovery_preserves_raw_mapping() {
    for seed in SEEDS {
        let mut rng = SplitMix64::new(seed ^ 0x9F);
        let gc = GcPolicy {
            low_watermark: 2,
            units_per_host_write: 4,
            parallel: false,
        };
        // Plenty of spares, so retirements remap instead of silently
        // bleeding capacity into a GC deadlock over the long run.
        let wear = WearConfig {
            per_erase_prob: 0.0,
            remap_enabled: true,
            spares_per_lane: 64,
            seed,
        };
        let mut ftl = Ftl::new(2, 24, 8, gc).with_wear(wear, 1);
        let mut written = std::collections::BTreeSet::new();
        for i in 0..400u64 {
            let lpn = rng.below(48);
            let (placement, _gc) = ftl.append(lpn);
            written.insert(lpn);
            if rng.chance(0.06) {
                let r = ftl.recover_program_fail(placement.ppa, lpn);
                assert_eq!(
                    ftl.lookup(lpn),
                    Some(r.new_ppa),
                    "seed {seed} op {i}: read-after-write lost"
                );
                assert!(
                    !(r.remapped && r.marked_bad),
                    "retirement is remap XOR capacity loss"
                );
                if r.deferred {
                    assert!(!r.remapped && !r.marked_bad);
                }
            }
            for &l in &written {
                assert!(ftl.lookup(l).is_some(), "seed {seed} op {i}: lost lpn {l}");
            }
        }
    }
}

/// Every injected fault is accounted for by exactly one recovery path:
/// the cross-layer counter equalities hold at every seed, for the host
/// stack (flash + FTL + NVMe) and for the NBD export path.
#[test]
fn fault_accounting_totals_match_injections() {
    for seed in SEEDS {
        let mut h = host(Device::Ull, IoPath::KernelInterrupt);
        h.set_fault_plan(&FaultPlan::uniform(seed, 2e-3));
        let spec = JobSpec::new("acct")
            .pattern(Pattern::Random)
            .read_fraction(0.7)
            .block_size(4096)
            .ios(4_000)
            .seed(seed ^ 0xACC7);
        let _ = run_job(&mut h, &spec);
        let (flash, rec) = h.controller().ssd().fault_counters();
        let nvme = h.nvme_fault_counters();
        // Every lost completion was detected by exactly one abort.
        assert_eq!(nvme.aborts, nvme.injected_timeouts, "seed {seed}");
        // Every program failure led to a retirement or a counted deferral.
        assert_eq!(
            rec.retired_blocks + rec.deferred_retirements,
            flash.program_failures,
            "seed {seed}"
        );
        // Every retirement was absorbed by a spare or shrank capacity.
        assert_eq!(
            rec.remapped + rec.marked_bad,
            rec.retired_blocks,
            "seed {seed}"
        );
        // Every marginal read took at least one retry step.
        assert!(flash.read_retry_steps >= flash.read_marginal_events);
        let rep = FaultReport {
            flash,
            ssd: rec,
            nvme,
            nbd: Default::default(),
        };
        assert_eq!(
            rep.injected_total(),
            flash.read_marginal_events + flash.program_failures + nvme.injected_timeouts,
            "seed {seed}"
        );
        assert!(
            rep.injected_total() > 0,
            "seed {seed}: 2e-3 over 4k ios must fire"
        );
    }
    // The NBD link lottery: drops, reconnects and replays stay equal.
    for seed in SEEDS {
        let mut sys =
            NbdSystem::new(presets::ull_800g(), NbdServerKind::Spdk, seed).expect("valid preset");
        let mut plan = FaultPlan::uniform(seed ^ 0xB, 0.0);
        plan.nbd_drop_prob = 0.05;
        sys.set_fault_plan(&plan);
        let mut t = SimTime::ZERO;
        for k in 0..500u64 {
            let r = sys.file_read(t, k.wrapping_mul(2654435761), 4096);
            t = r.done;
        }
        let c = sys.nbd_fault_counters();
        assert!(c.link_drops > 0, "seed {seed}: link lottery never fired");
        assert_eq!(c.link_drops, c.reconnects, "seed {seed}");
        assert_eq!(c.reconnects, c.replayed_commands, "seed {seed}");
    }
}

/// The probe's accounting identity `sum(stages) == end_to_end` holds for
/// every request even while the fault machinery aborts, retries with
/// backoff, resets the controller, and re-executes commands — at every
/// seed, with every fault class firing (rates > 0). Recovery waits are
/// charged to real stages (SQ wait, completion delivery), never dropped
/// on the floor, so the attribution stays exact under the ugliest runs.
#[test]
fn probe_accounting_tiles_exactly_under_faults() {
    use ull_ssd_study::probe::ProbeConfig;

    for seed in SEEDS {
        let mut host = host(Device::Ull, IoPath::KernelInterrupt);
        let mut plan = FaultPlan::uniform(seed, 0.0);
        plan.nvme_timeout_prob = 0.05;
        plan.flash_read_marginal_prob = 0.05;
        plan.program_fail_prob = 0.02;
        host.set_fault_plan(&plan);
        host.enable_probe(ProbeConfig::default());
        let spec = JobSpec::new("probe-under-faults")
            .pattern(Pattern::Random)
            .read_fraction(0.6)
            .ios(1_500)
            .seed(seed ^ 0xFA_575);
        let job = run_job(&mut host, &spec);
        let probe = host.take_probe().expect("probe was enabled");
        assert!(
            probe.metrics.accounting_exact(),
            "seed {seed}: sum(stages) != end_to_end under faults"
        );
        assert_eq!(
            probe.metrics.ios(),
            job.completed,
            "seed {seed}: probe lost or invented requests"
        );
        let (flash, _rec) = host.controller().ssd().fault_counters();
        let injected = host.nvme_fault_counters().injected_timeouts
            + flash.read_marginal_events
            + flash.program_failures;
        assert!(
            injected > 0,
            "seed {seed}: fault lottery never fired — test is vacuous"
        );
    }
}
