//! Golden-baseline tests: the committed `BENCH_*.json` artifacts must be
//! bitwise reproducible in-process.
//!
//! CI already diffs `reproduce --json` output against the committed
//! baselines; these tests make the same guarantee enforceable offline via
//! plain `cargo test`, so a hot-path change (the timing wheel, the slab
//! request path, report-assembly refactors) that perturbs even one byte
//! of a deterministic artifact fails tier-1 *before* a PR reaches CI.
//!
//! Wall-clock numbers live in `BENCH_perf.json`, which is deliberately
//! *not* covered here — it is machine-dependent by design (see
//! docs/PERFORMANCE.md).

use ull_ssd_study::study::registry::{default_entries, find, json_document, Section};
use ull_ssd_study::study::Scale;

fn committed(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/").to_string() + name;
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn single_section_doc(experiment: &str) -> String {
    let entry = find(experiment).expect("experiment is registered");
    let section = entry.run(Scale::Quick, 2);
    json_document(Scale::Quick, vec![section]).to_pretty_string()
}

/// `reproduce all --json` reproduces `BENCH_quick.json` byte for byte.
#[test]
fn bench_quick_json_is_bitwise_reproducible() {
    let sections: Vec<Section> = default_entries().map(|e| e.run(Scale::Quick, 2)).collect();
    let doc = json_document(Scale::Quick, sections).to_pretty_string();
    assert_eq!(
        doc,
        committed("BENCH_quick.json"),
        "regenerated suite document diverged from the committed baseline; \
         if the simulation legitimately changed, regenerate with \
         `cargo run --release -p ull-study --bin reproduce -- all --json > BENCH_quick.json`"
    );
}

/// The fault-injection sweep reproduces `BENCH_faults_quick.json`.
#[test]
fn bench_faults_quick_json_is_bitwise_reproducible() {
    assert_eq!(
        single_section_doc("faults"),
        committed("BENCH_faults_quick.json"),
        "fault sweep diverged from its committed baseline; regenerate with \
         `cargo run --release -p ull-study --bin reproduce -- faults --json > BENCH_faults_quick.json`"
    );
}

/// The latency-attribution sweep reproduces `BENCH_breakdown_quick.json`.
#[test]
fn bench_breakdown_quick_json_is_bitwise_reproducible() {
    assert_eq!(
        single_section_doc("breakdown"),
        committed("BENCH_breakdown_quick.json"),
        "breakdown sweep diverged from its committed baseline; regenerate with \
         `cargo run --release -p ull-study --bin reproduce -- breakdown --json > BENCH_breakdown_quick.json`"
    );
}

/// The nexus rebuild sweep reproduces `BENCH_rebuild_quick.json`.
#[test]
fn bench_rebuild_quick_json_is_bitwise_reproducible() {
    assert_eq!(
        single_section_doc("rebuild"),
        committed("BENCH_rebuild_quick.json"),
        "rebuild sweep diverged from its committed baseline; regenerate with \
         `cargo run --release -p ull-study --bin reproduce -- rebuild --json > BENCH_rebuild_quick.json`"
    );
}

/// `reproduce --shards N` reproduces every committed baseline byte for
/// byte at N ∈ {1, 2, 4}: the shard count, like `--jobs`, partitions
/// scheduling only (see docs/SHARDING.md).
#[test]
fn shard_count_cannot_change_baseline_bytes() {
    for shards in [1usize, 2, 4] {
        let sections: Vec<Section> = default_entries()
            .map(|e| e.run_sharded(Scale::Quick, 2, shards))
            .collect();
        let doc = json_document(Scale::Quick, sections).to_pretty_string();
        assert_eq!(
            doc,
            committed("BENCH_quick.json"),
            "suite document diverged at --shards {shards}"
        );
        for (experiment, baseline) in [
            ("faults", "BENCH_faults_quick.json"),
            ("breakdown", "BENCH_breakdown_quick.json"),
            ("rebuild", "BENCH_rebuild_quick.json"),
        ] {
            let entry = find(experiment).expect("experiment is registered");
            let section = entry.run_sharded(Scale::Quick, 2, shards);
            assert_eq!(
                json_document(Scale::Quick, vec![section]).to_pretty_string(),
                committed(baseline),
                "{experiment} diverged at --shards {shards}"
            );
        }
    }
}
