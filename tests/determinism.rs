//! Golden determinism tests: identical configs must reproduce identical
//! reports *byte for byte*, twice in the same process and across runs.
//!
//! This is the repository's core scientific claim made executable: every
//! figure in the study is only comparable across PRs because the simulator
//! has no hidden nondeterminism (enforced statically by simlint, see
//! tests/simlint_gate.rs, and dynamically here). The fingerprint is the
//! full `Debug` rendering of the reports — every field, every histogram
//! bin, every series point — so any divergence anywhere in the pipeline
//! fails the comparison.

use ull_ssd_study::prelude::*;
use ull_ssd_study::study::experiments::completion;
use ull_ssd_study::study::registry::{find, json_document};

/// Runs one complete async job and fingerprints the entire report.
fn job_fingerprint(seed: u64) -> String {
    let mut host = ull_study::host(Device::Ull, IoPath::KernelPolled);
    let spec = JobSpec::new("golden")
        .pattern(Pattern::Random)
        .engine(Engine::Libaio)
        .iodepth(8)
        .ios(4_000)
        .seed(seed);
    let report = run_job(&mut host, &spec);
    format!("{report:?}")
}

#[test]
fn same_seed_job_reports_are_byte_identical() {
    let first = job_fingerprint(0x000D_5EED);
    let second = job_fingerprint(0x000D_5EED);
    assert_eq!(first, second, "same-seed double run diverged");
    assert!(
        first.len() > 500,
        "fingerprint suspiciously small: {} bytes",
        first.len()
    );
}

#[test]
fn different_seeds_actually_change_the_trajectory() {
    // Guards the golden test against vacuity: if seeding were ignored the
    // byte-identity above would hold trivially.
    assert_ne!(job_fingerprint(1), job_fingerprint(2));
}

#[test]
fn interrupt_path_round_trip_is_byte_identical() {
    let run = || {
        let mut host = ull_study::host(Device::Nvme750, IoPath::KernelInterrupt);
        let spec = JobSpec::new("golden-irq")
            .pattern(Pattern::Sequential)
            .engine(Engine::Pvsync2)
            .ios(2_000)
            .seed(7);
        format!("{:?}", run_job(&mut host, &spec))
    };
    assert_eq!(run(), run());
}

#[test]
fn completion_experiment_is_byte_identical_end_to_end() {
    // The fig. 9/10 completion-method experiment exercises every I/O path
    // (interrupt, poll, hybrid, SPDK) on both devices; a byte-identical
    // double run covers the whole stack the paper's headline figures use.
    let a = format!("{:?}", completion::fig0910_run(Scale::Quick));
    let b = format!("{:?}", completion::fig0910_run(Scale::Quick));
    assert_eq!(
        a, b,
        "completion experiment diverged between identical runs"
    );
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    // The "parallel cells, serial merge" claim (docs/DETERMINISM.md) made
    // executable: a registry run on 4 workers must be byte-identical to
    // the serial run — same printed section bodies, same JSON document.
    // table1/fig15/fig23 cover a constant-cell table, a two-cell job
    // sweep and a 20-cell NBD sweep, so the merge handles every shape.
    let run = |jobs: usize| {
        let sections: Vec<_> = ["table1", "fig15", "fig23"]
            .iter()
            .map(|n| find(n).expect("registry name").run(Scale::Quick, jobs))
            .collect();
        let bodies: Vec<String> = sections.iter().map(|s| s.body.clone()).collect();
        let doc = json_document(Scale::Quick, sections).to_pretty_string();
        (doc, bodies)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel, "jobs=4 diverged from jobs=1");
    assert!(
        serial.0.len() > 500,
        "document suspiciously small: {} bytes",
        serial.0.len()
    );
}

#[test]
fn probing_never_perturbs_the_simulation() {
    // Observation must be free: a probed run and an unprobed run of the
    // same seed produce byte-identical job reports on every completion
    // path, sync and async. This is what keeps the committed
    // BENCH_quick.json / BENCH_faults_quick.json baselines valid whether
    // or not anyone traces — the probe reads the simulation, it never
    // advances it.
    let cases = [
        ("interrupt", IoPath::KernelInterrupt, Engine::Pvsync2, 1),
        ("poll", IoPath::KernelPolled, Engine::Pvsync2, 1),
        ("hybrid", IoPath::KernelHybrid, Engine::Pvsync2, 1),
        ("spdk", IoPath::Spdk, Engine::SpdkPlugin, 1),
        ("libaio", IoPath::KernelInterrupt, Engine::Libaio, 8),
    ];
    for (label, path, engine, depth) in cases {
        let run = |probed: bool| {
            let mut host = ull_study::host(Device::Ull, path);
            if probed {
                host.enable_probe(ProbeConfig::default());
            }
            let spec = JobSpec::new(format!("golden-{label}"))
                .pattern(Pattern::Random)
                .read_fraction(0.7)
                .engine(engine)
                .iodepth(depth)
                .ios(2_000)
                .seed(0x0B5E_55ED);
            let fp = format!("{:?}", run_job(&mut host, &spec));
            let ios = host.take_probe().map(|p| p.metrics.ios());
            (fp, ios)
        };
        let (plain, none) = run(false);
        let (probed, ios) = run(true);
        assert_eq!(plain, probed, "{label}: probing changed the report");
        assert_eq!(none, None, "{label}: unprobed host must yield no report");
        assert_eq!(ios, Some(2_000), "{label}: probe must see every I/O");
    }
}

#[test]
fn chrome_trace_bytes_are_stable() {
    // `reproduce breakdown --trace` twice must write the same file: the
    // Chrome document is a pure function of the simulated run.
    let doc = || {
        find("breakdown")
            .expect("registry name")
            .trace(Scale::Quick)
            .expect("breakdown is traceable")
            .chrome_trace()
            .to_pretty_string()
    };
    let a = doc();
    assert_eq!(a, doc(), "trace export diverged between identical runs");
    assert!(
        a.contains("\"traceEvents\"") && a.contains("\"submit_stack\""),
        "trace document missing expected events"
    );
}

#[test]
fn fault_sweep_is_byte_identical_across_workers() {
    // The fault-injection sweep adds recovery state machines (retries,
    // controller resets, NBD replays) on top of the nominal stack; its
    // lotteries are forked per cell from the plan seed, so it must stay
    // byte-identical across worker counts like everything else. This is
    // the sweep CI diffs against BENCH_faults_quick.json.
    let run = |jobs: usize| {
        let s = find("faults")
            .expect("registry name")
            .run(Scale::Quick, jobs);
        assert!(
            s.ok(),
            "shape violations at jobs={jobs}: {:?}",
            s.violations
        );
        (s.body.clone(), s.into_json().to_pretty_string())
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "fault sweep diverged across --jobs");
    assert!(
        serial.0.contains("ULL SSD/interrupt") && serial.0.contains("kernel-nbd"),
        "sweep table missing expected rows"
    );
}
