//! Docs-drift guard: the rule table in docs/DETERMINISM.md must stay in
//! lockstep with the catalogue the analyzer actually enforces.
//!
//! Each `RuleInfo` carries a one-line `brief` that is simultaneously the
//! doc table's "rule statement" cell — so adding, renaming or rewording a
//! rule without updating the documentation fails `cargo test`, and the
//! docs can never advertise a rule the analyzer dropped.

use std::path::Path;

fn read_doc(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(root.join(rel))
        .unwrap_or_else(|e| panic!("{rel} must exist and be readable: {e}"))
}

#[test]
fn determinism_doc_table_carries_every_rule_verbatim() {
    let doc = read_doc("docs/DETERMINISM.md");
    for r in ull_simlint::RULES {
        let row = format!("| {} | {} |", r.code, r.brief);
        assert!(
            doc.contains(&row),
            "docs/DETERMINISM.md rule table is out of sync with the catalogue: \
             missing or stale row for {}.\nExpected a table row starting exactly:\n  {row}\n\
             (the cell text is RuleInfo::brief in crates/simlint/src/rules.rs — \
             change both together)",
            r.code
        );
    }
}

#[test]
fn determinism_doc_has_no_phantom_rules() {
    // Every `| SNNN |` table row in the doc must name a catalogued rule,
    // so a rule removed from the analyzer cannot linger in the docs.
    let doc = read_doc("docs/DETERMINISM.md");
    for line in doc.lines() {
        let Some(rest) = line.strip_prefix("| S") else {
            continue;
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.len() != 3 {
            continue;
        }
        let code = format!("S{digits}");
        assert!(
            ull_simlint::RULES.iter().any(|r| r.code == code),
            "docs/DETERMINISM.md documents {code}, which the analyzer does not enforce"
        );
    }
}

#[test]
fn static_analysis_doc_covers_the_architecture_and_every_rule_family() {
    let doc = read_doc("docs/STATIC_ANALYSIS.md");
    // The architecture walk must name each phase module as it exists.
    for module in [
        "source.rs",
        "lexer.rs",
        "symbols.rs",
        "resolve.rs",
        "rules.rs",
    ] {
        assert!(
            doc.contains(module),
            "docs/STATIC_ANALYSIS.md must walk the {module} phase"
        );
    }
    for r in ull_simlint::RULES {
        assert!(
            doc.contains(r.code),
            "docs/STATIC_ANALYSIS.md must mention rule {}",
            r.code
        );
    }
    // The baseline ratchet and the escape hatches are part of the workflow
    // the doc teaches.
    for needle in ["simlint_baseline.json", "justify(", "allow("] {
        assert!(
            doc.contains(needle),
            "docs/STATIC_ANALYSIS.md must document `{needle}`"
        );
    }
}

#[test]
fn readme_and_design_link_the_static_analysis_doc() {
    assert!(
        read_doc("README.md").contains("docs/STATIC_ANALYSIS.md"),
        "README.md must link docs/STATIC_ANALYSIS.md"
    );
    assert!(
        read_doc("DESIGN.md").contains("docs/STATIC_ANALYSIS.md"),
        "DESIGN.md must link docs/STATIC_ANALYSIS.md"
    );
}

#[test]
fn readme_design_and_determinism_link_the_sharding_doc() {
    for doc in ["README.md", "DESIGN.md", "docs/DETERMINISM.md"] {
        assert!(
            read_doc(doc).contains("docs/SHARDING.md"),
            "{doc} must link docs/SHARDING.md"
        );
    }
}

#[test]
fn readme_design_and_experiments_link_the_nexus_doc() {
    for doc in ["README.md", "DESIGN.md", "EXPERIMENTS.md"] {
        assert!(
            read_doc(doc).contains("docs/NEXUS.md"),
            "{doc} must link docs/NEXUS.md"
        );
    }
}

/// The stage table in docs/OBSERVABILITY.md must stay in lockstep with
/// the taxonomy `ull-probe` actually records: every stage appears as a
/// markdown row carrying its position, name and software/device half.
#[test]
fn observability_doc_stage_table_matches_the_taxonomy() {
    let doc = read_doc("docs/OBSERVABILITY.md");
    for (i, stage) in ull_probe::Stage::ALL.iter().enumerate() {
        let half = if stage.is_software() {
            "software"
        } else {
            "device"
        };
        let prefix = format!("| {} | `{}` | {} |", i + 1, stage.name(), half);
        assert!(
            doc.contains(&prefix),
            "docs/OBSERVABILITY.md stage table is out of sync with \
             Stage::ALL: missing or stale row for {:?}.\nExpected a row \
             starting exactly:\n  {prefix}",
            stage.name()
        );
    }
}

/// The registry table in EXPERIMENTS.md must stay in lockstep with the
/// registry `reproduce --list` actually prints: every entry appears as
/// a markdown row carrying its name (starred when not part of `all`),
/// aliases, title, trace support and description.
#[test]
fn experiments_doc_table_carries_every_registry_entry_verbatim() {
    let doc = read_doc("EXPERIMENTS.md");
    for e in ull_ssd_study::study::registry::entries() {
        let star = if e.in_all { "" } else { "\\*" };
        let aliases = if e.aliases.is_empty() {
            "-".to_string()
        } else {
            e.aliases.join(", ")
        };
        let trace = if e.traceable { "yes" } else { "-" };
        let row = format!(
            "| {}{star} | {aliases} | {} | {trace} | {} |",
            e.name, e.title, e.description
        );
        assert!(
            doc.contains(&row),
            "EXPERIMENTS.md registry table is out of sync with the registry: \
             missing or stale row for {:?}.\nExpected exactly:\n  {row}\n\
             (columns: name, aliases, title, trace, description — the same \
             fields `reproduce --list` prints)",
            e.name
        );
    }
}

/// A registry entry removed from the code cannot linger in the doc
/// table: every `| name |`-style row must resolve to a live entry.
#[test]
fn experiments_doc_has_no_phantom_entries() {
    let doc = read_doc("EXPERIMENTS.md");
    let table: Vec<&str> = doc
        .lines()
        .skip_while(|l| !l.starts_with("| name |"))
        .skip(2)
        .take_while(|l| l.starts_with('|'))
        .collect();
    assert!(
        table.len() >= 17,
        "EXPERIMENTS.md must carry the registry table (found {} rows)",
        table.len()
    );
    for line in table {
        let name = line
            .trim_start_matches('|')
            .split('|')
            .next()
            .expect("split always yields one piece")
            .trim()
            .trim_end_matches("\\*");
        assert!(
            ull_ssd_study::study::registry::find(name).is_some(),
            "EXPERIMENTS.md lists experiment {name:?}, which the registry does not know"
        );
    }
}
