//! Sharded-simulation invariants at the workspace level.
//!
//! `docs/SHARDING.md` claims that the physical shard count is pure
//! scheduling: the merged event history — and therefore every output
//! byte — is a function of the world alone. The unit tests inside
//! `ull-simkit` pin that for hand-built worlds; these tests attack it
//! with seeded *random* worlds (random fan-out, random delays, random
//! lookahead floors) and with the real gossip-coupled fleet workload.

use ull_simkit::{
    ActorId, Component, Delivery, Lookahead, Scheduler, SerialRunner, ShardedWorld, SimDuration,
    SimTime, SplitMix64,
};
use ull_workload::run_fleet;

/// A randomized actor: every received event triggers a seeded burst of
/// sends to random destinations at random future offsets. Behavior is a
/// pure function of the actor's own seed and its received-event
/// sequence, so any divergence between shard counts is the runtime's
/// fault, not the workload's.
struct Gossiper {
    rng: SplitMix64,
    n_actors: u64,
    budget: u32,
    digest: u64,
}

impl Gossiper {
    fn new(seed: u64, n_actors: u64, budget: u32) -> Self {
        Gossiper {
            rng: SplitMix64::new(seed),
            n_actors,
            budget,
            digest: 0,
        }
    }

    fn burst(&mut self, now: SimTime, sched: &mut Scheduler<'_, u64>) {
        let fanout = 1 + self.rng.below(3);
        for _ in 0..fanout {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let dst = ActorId(self.rng.below(self.n_actors) as u32);
            let delay = SimDuration::from_nanos(self.rng.below(50_000));
            let payload = self.rng.next_u64() >> 32;
            sched.send(dst, now + delay, payload);
        }
    }
}

impl Component for Gossiper {
    type Event = u64;

    fn on_event(&mut self, now: SimTime, ev: u64, sched: &mut Scheduler<'_, u64>) {
        // Order-sensitive digest: two runs that deliver the same events
        // in a different order disagree here.
        self.digest = self.digest.wrapping_mul(0x100_0000_01B3).wrapping_add(ev);
        self.burst(now, sched);
    }
}

/// Runs one seeded random world and returns its observable history: the
/// per-actor digests and the per-actor cross-shard delivery logs.
fn run_random_world(
    trial: u64,
    n_actors: u64,
    shards: usize,
    floor: SimDuration,
) -> (Vec<u64>, Vec<Vec<Delivery>>) {
    let actors: Vec<Gossiper> = (0..n_actors)
        .map(|i| Gossiper::new(trial.wrapping_mul(0x9E37_79B9) ^ i, n_actors, 60))
        .collect();
    let mut world = ShardedWorld::new(shards, Lookahead::from_floor(floor), actors);
    for i in 0..n_actors {
        world.seed(ActorId(i as u32), |g, sched| g.burst(SimTime::ZERO, sched));
    }
    world.run();
    let logs = world.delivery_logs();
    let digests = world.into_actors().iter().map(|g| g.digest).collect();
    (digests, logs)
}

/// Seeded property: for random worlds under random lookahead floors,
/// every shard count replays the exact same per-actor event history.
#[test]
fn random_worlds_are_shard_count_invariant() {
    let mut seeds = SplitMix64::new(0x5AAD_ED01);
    for trial in 0..12u64 {
        let n_actors = 2 + seeds.below(7);
        let floor = SimDuration::from_nanos(1 + seeds.below(20_000));
        let serial = run_random_world(trial, n_actors, 1, floor);
        assert!(
            serial.1.iter().any(|log| !log.is_empty()),
            "trial {trial}: the world must exchange cross-actor events"
        );
        for shards in [2usize, 3, 4, 8] {
            let sharded = run_random_world(trial, n_actors, shards, floor);
            assert_eq!(
                sharded, serial,
                "trial {trial} (actors={n_actors}, floor={floor:?}) diverged at shards={shards}"
            );
        }
    }
}

/// The merged delivery order is the `(time, shard, seq)` total order:
/// within one receiving actor the log ascends strictly by
/// `(at, src, seq)` — the key cross-shard events are merged under.
#[test]
fn delivery_logs_respect_the_merge_order() {
    for trial in 0..6u64 {
        let (_, logs) = run_random_world(trial, 5, 3, SimDuration::from_nanos(777));
        for (actor, log) in logs.iter().enumerate() {
            for pair in log.windows(2) {
                let a = (pair[0].at, pair[0].src, pair[0].seq);
                let b = (pair[1].at, pair[1].src, pair[1].seq);
                assert!(
                    a < b,
                    "actor {actor}: deliveries out of (time, shard, seq) order: {pair:?}"
                );
            }
        }
    }
}

/// The real fleet workload (hosts + gossip) is byte-identical at every
/// shard count — the workspace-level face of the simkit guarantee.
#[test]
fn fleet_workload_is_shard_count_invariant() {
    let serial = run_fleet(5, 300, 4, 1, &mut SerialRunner);
    for shards in [2usize, 4] {
        assert_eq!(
            run_fleet(5, 300, 4, shards, &mut SerialRunner),
            serial,
            "fleet diverged at shards={shards}"
        );
    }
}
